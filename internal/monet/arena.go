package monet

import (
	"sync"

	"cobra/internal/obs"
)

// Morsel arenas: reusable per-morsel scratch memory for the fused
// execution paths (pipeline.go) and the allocation-disciplined grouped
// aggregation (aggregate.go). A morsel callback borrows an Arena from
// the package free list, carves typed scratch buffers out of it, and
// returns it when the morsel ends; the buffers keep their capacity
// across morsels and across queries, so steady-state fan-outs allocate
// nothing per morsel.
//
// Contract (enforced by the cobravet arenaescape analyzer): buffers
// handed out by an Arena are valid only until the next Reset/PutArena.
// They must never be returned from the morsel callback, stored into
// captured variables that outlive it, or retained in struct fields —
// per-morsel results that survive the morsel must be copied into
// exact-size fresh slices first.
//
// The free list is pool-width-sized: at most one parked arena per
// worker, so the retained scratch is bounded by pool width × the
// largest morsel working set, and SetDefaultPoolWorkers shrinks the
// list when the pool narrows.

// Arena-reuse metrics (monet.arena.*): how often morsels ran on
// recycled scratch versus fresh allocations, how many arenas the
// width-sized free list discarded, and how much scratch stays parked.
var (
	cArenaGets     = obs.C("monet.arena.gets")
	cArenaReuses   = obs.C("monet.arena.reuses")
	cArenaAllocs   = obs.C("monet.arena.allocs")
	cArenaDiscards = obs.C("monet.arena.discards")
	gArenaRetained = obs.G("monet.arena.retained")
	gArenaBytes    = obs.G("monet.arena.bytes")
)

// arenaBuf is one class of reusable scratch: a stack of previously
// handed-out buffers, rewound by Reset and regrown in place when a
// request outgrows the recycled capacity.
type arenaBuf[T any] struct {
	bufs [][]T
	next int
}

// get returns a slice of length n with unspecified contents, reusing
// the buffer handed out at this position in the previous cycle when
// its capacity suffices.
func (b *arenaBuf[T]) get(n int) []T {
	if b.next < len(b.bufs) {
		if s := b.bufs[b.next]; cap(s) >= n {
			b.next++
			return s[:n]
		}
		s := make([]T, n)
		b.bufs[b.next] = s
		b.next++
		return s
	}
	s := make([]T, n)
	b.bufs = append(b.bufs, s)
	b.next++
	return s
}

// reset rewinds the stack; retained buffers keep their capacity.
func (b *arenaBuf[T]) reset() { b.next = 0 }

// retained returns the element count parked across all buffers.
func (b *arenaBuf[T]) retained() int {
	n := 0
	for _, s := range b.bufs {
		n += cap(s)
	}
	return n
}

// Arena is reusable morsel-scoped scratch memory. It is not safe for
// concurrent use; each borrower owns it exclusively between GetArena
// and PutArena. The zero Arena is ready to use.
type Arena struct {
	ints     arenaBuf[int]
	i32s     arenaBuf[int32]
	i64s     arenaBuf[int64]
	f64s     arenaBuf[float64]
	strs     arenaBuf[string]
	vals     arenaBuf[Value]
	intSlots map[int64]int32
	strSlots map[string]int32
}

// Ints returns a reusable []int of length n; contents are unspecified.
func (a *Arena) Ints(n int) []int { return a.ints.get(n) }

// Int32s returns a reusable []int32 of length n; contents are
// unspecified.
func (a *Arena) Int32s(n int) []int32 { return a.i32s.get(n) }

// Int64s returns a reusable []int64 of length n; contents are
// unspecified.
func (a *Arena) Int64s(n int) []int64 { return a.i64s.get(n) }

// Floats returns a reusable []float64 of length n; contents are
// unspecified.
func (a *Arena) Floats(n int) []float64 { return a.f64s.get(n) }

// Strs returns a reusable []string of length n; contents are
// unspecified.
func (a *Arena) Strs(n int) []string { return a.strs.get(n) }

// Values returns a reusable []Value of length n; contents are
// unspecified.
func (a *Arena) Values(n int) []Value { return a.vals.get(n) }

// IntSlots returns the arena's reusable int64→slot map, emptied. The
// map reaches a steady-state bucket count after a few morsels and
// then clears without allocating.
func (a *Arena) IntSlots() map[int64]int32 {
	if a.intSlots == nil {
		a.intSlots = make(map[int64]int32)
	}
	clear(a.intSlots)
	return a.intSlots
}

// StrSlots returns the arena's reusable string→slot map, emptied.
func (a *Arena) StrSlots() map[string]int32 {
	if a.strSlots == nil {
		a.strSlots = make(map[string]int32)
	}
	clear(a.strSlots)
	return a.strSlots
}

// Reset rewinds every scratch class without freeing: the next cycle of
// get calls reuses the same buffers (reset-not-free).
func (a *Arena) Reset() {
	a.ints.reset()
	a.i32s.reset()
	a.i64s.reset()
	a.f64s.reset()
	a.strs.reset()
	a.vals.reset()
}

// retainedBytes estimates the scratch capacity the arena keeps parked.
func (a *Arena) retainedBytes() int64 {
	n := int64(a.ints.retained())*8 +
		int64(a.i32s.retained())*4 +
		int64(a.i64s.retained())*8 +
		int64(a.f64s.retained())*8 +
		int64(a.strs.retained())*16 +
		int64(a.vals.retained())*48
	n += int64(len(a.intSlots))*16 + int64(len(a.strSlots))*24
	return n
}

// arenaPool is the package-wide free list of parked arenas. Capacity
// tracks the kernel pool width: with w workers at most w morsels run
// concurrently, so parking more than w arenas is pure leak.
var arenaPool struct {
	mu   sync.Mutex
	free []*Arena
	cap  int // 0 = follow the default pool width lazily
}

// arenaPoolCap returns the current free-list capacity, deriving it
// from the shared pool width when no explicit resize happened yet.
func arenaPoolCapLocked() int {
	if arenaPool.cap > 0 {
		return arenaPool.cap
	}
	return DefaultPool().Workers()
}

// GetArena borrows an arena from the free list (or allocates a fresh
// one). The caller owns it exclusively until PutArena.
func GetArena() *Arena {
	cArenaGets.Inc()
	arenaPool.mu.Lock()
	if n := len(arenaPool.free); n > 0 {
		a := arenaPool.free[n-1]
		arenaPool.free[n-1] = nil
		arenaPool.free = arenaPool.free[:n-1]
		gArenaRetained.Set(int64(len(arenaPool.free)))
		arenaPool.mu.Unlock()
		cArenaReuses.Inc()
		return a
	}
	arenaPool.mu.Unlock()
	cArenaAllocs.Inc()
	return &Arena{}
}

// PutArena resets a and parks it for reuse. Arenas beyond the
// pool-width capacity are discarded to the garbage collector — the
// free list never outgrows the number of workers that can need
// scratch at once.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.mu.Lock()
	if len(arenaPool.free) < arenaPoolCapLocked() {
		arenaPool.free = append(arenaPool.free, a)
		gArenaRetained.Set(int64(len(arenaPool.free)))
		gArenaBytes.Set(retainedBytesLocked())
		arenaPool.mu.Unlock()
		return
	}
	arenaPool.mu.Unlock()
	cArenaDiscards.Inc()
}

// retainedBytesLocked sums the scratch parked on the free list; the
// caller holds arenaPool.mu.
func retainedBytesLocked() int64 {
	var n int64
	for _, a := range arenaPool.free {
		n += a.retainedBytes()
	}
	return n
}

// resizeArenaPool pins the free-list capacity to the new pool width
// and drops parked arenas beyond it, so narrowing the pool releases
// the excess scratch instead of leaking it. SetDefaultPoolWorkers
// calls it on every resize.
func resizeArenaPool(width int) {
	if width < 1 {
		width = 1
	}
	arenaPool.mu.Lock()
	arenaPool.cap = width
	for len(arenaPool.free) > width {
		n := len(arenaPool.free)
		arenaPool.free[n-1] = nil
		arenaPool.free = arenaPool.free[:n-1]
		cArenaDiscards.Inc()
	}
	gArenaRetained.Set(int64(len(arenaPool.free)))
	gArenaBytes.Set(retainedBytesLocked())
	arenaPool.mu.Unlock()
}

// ArenaStats reports the free-list state: parked arena count and the
// approximate bytes of scratch they retain. It backs the
// monet.arena.* gauges and the arena leak tests.
func ArenaStats() (retained int, bytes int64) {
	arenaPool.mu.Lock()
	defer arenaPool.mu.Unlock()
	return len(arenaPool.free), retainedBytesLocked()
}
