package monet

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"cobra/internal/obs"
)

// Per-operator parallel-execution histograms. Latency is the wall time
// of the fan-out; speedup is busy-time/wall-time observed in milli-×
// units (2000 = 2× parallel speedup), so STATS can report how much the
// morsel scheduler actually buys per operator family.
var (
	hPoolSelectLat = obs.H("monet.pool.select.latency")
	hPoolSelectSpd = obs.H("monet.pool.select.speedup")
	hPoolJoinLat   = obs.H("monet.pool.join.latency")
	hPoolJoinSpd   = obs.H("monet.pool.join.speedup")
	hPoolAggLat    = obs.H("monet.pool.aggregate.latency")
	hPoolAggSpd    = obs.H("monet.pool.aggregate.speedup")
)

// numMorsels returns how many fixed-size morsels cover n rows.
func numMorsels(n int) int { return (n + MorselSize - 1) / MorselSize }

// maxMorselSpans caps how many per-morsel child spans one fan-out
// records into a trace. All morsels still accumulate into the trace's
// shared Resources; the cap only bounds span-tree detail so retained
// traces (ring, slow log) stay small for huge scans.
const maxMorselSpans = 8

// runMorsels splits [0, n) into MorselSize chunks and runs fn for each
// on the pool, blocking until all finish. fn receives the morsel index
// m and its row range [lo, hi); morsel indices are dense, so callers
// collect per-morsel partial state in an nm-sized slice and merge it in
// morsel order — that merge order is what keeps parallel operators
// bit-identical to their serial paths regardless of worker count.
func runMorsels(p *Pool, n int, lat, spd *obs.Histogram, fn func(m, lo, hi int)) {
	runMorselsSpan(p, n, lat, spd, nil, fn)
}

// runMorselsSpan is runMorsels under a trace span: each morsel task
// records its queue wait (submit → worker pickup) and run time into
// the trace's shared Resources, and the first maxMorselSpans morsels
// additionally get child spans under sp. Morsel child spans are
// created at submit time, in morsel order, so the parent's child list
// is deterministic regardless of worker scheduling; the timing attrs
// are filled in when the task runs. A nil sp skips all span work and
// the extra per-morsel clock read.
func runMorselsSpan(p *Pool, n int, lat, spd *obs.Histogram, sp *obs.Span, fn func(m, lo, hi int)) {
	nm := numMorsels(n)
	cPoolMorsels.Add(int64(nm))
	res := sp.Resources()
	start := time.Now()
	var busy atomic.Int64
	b := p.Batch()
	for m := 0; m < nm; m++ {
		m := m
		lo := m * MorselSize
		hi := lo + MorselSize
		if hi > n {
			hi = n
		}
		if sp == nil {
			//cobravet:allow allochot // one closure per morsel IS the fan-out unit; bounded by morsel count, not rows
			b.Submit(func() {
				t0 := time.Now()
				fn(m, lo, hi)
				busy.Add(int64(time.Since(t0)))
			})
			continue
		}
		var msp *obs.Span
		if m < maxMorselSpans {
			msp = sp.StartChild("monet.morsel")
			msp.SetAttr("morsel", strconv.Itoa(m))
			msp.SetAttr("rows", strconv.Itoa(hi-lo))
		}
		submitted := time.Now()
		//cobravet:allow allochot // one closure per morsel IS the fan-out unit; bounded by morsel count, not rows
		b.Submit(func() {
			t0 := time.Now()
			fn(m, lo, hi)
			run := time.Since(t0)
			wait := t0.Sub(submitted)
			if wait < 0 {
				wait = 0
			}
			busy.Add(int64(run))
			res.AddMorsel(wait, run)
			if msp != nil {
				msp.SetAttr("queue_wait", obs.FormatDuration(wait))
				msp.SetAttr("run", obs.FormatDuration(run))
				msp.Finish()
			}
		})
	}
	b.Wait()
	wall := int64(time.Since(start))
	if lat != nil {
		lat.ObserveNs(wall)
	}
	if spd != nil && wall > 0 {
		spd.ObserveNs(busy.Load() * 1000 / wall)
	}
}

// parFilterIdx evaluates pred over [0, n) in parallel morsels and
// returns the matching positions in ascending order — the parallel
// core of Select/Uselect/Semijoin/KDiff. Each morsel collects its own
// match list; concatenating the lists in morsel index order recovers
// exactly the serial scan order.
func parFilterIdx(p *Pool, n int, lat, spd *obs.Histogram, pred func(i int) bool) []int {
	return parFilterIdxSpan(p, n, lat, spd, nil, pred)
}

// parFilterIdxSpan is parFilterIdx under an optional trace span. Each
// morsel collects matches into arena scratch and copies only the
// exact-size survivor list out, so the fan-out's transient footprint
// is bounded by pool width, not morsel count.
func parFilterIdxSpan(p *Pool, n int, lat, spd *obs.Histogram, sp *obs.Span, pred func(i int) bool) []int {
	parts := make([][]int, numMorsels(n))
	runMorselsSpan(p, n, lat, spd, sp, func(m, lo, hi int) {
		a := GetArena()
		buf := a.Ints(hi - lo)
		k := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				buf[k] = i
				k++
			}
		}
		parts[m] = append([]int(nil), buf[:k]...)
		PutArena(a)
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	idx := make([]int, 0, total)
	for _, part := range parts {
		idx = append(idx, part...)
	}
	return idx
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed integer
// hash used to route numeric join keys to shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a string with 64-bit FNV-1a; strings and blobs route to
// shards by content, matching the equality the hash table uses.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// hashKey routes a value to a hash-table shard. Keys that compare
// equal must hash equal, so -0.0 is normalized to +0.0 before its bit
// pattern is hashed.
func hashKey(v Value) uint64 {
	switch v.Typ {
	case OIDT, IntT, BoolT:
		return splitmix64(uint64(v.Int()))
	case FloatT:
		f := v.Float()
		if f == 0 {
			f = 0 // collapses -0.0 onto +0.0
		}
		return splitmix64(math.Float64bits(f))
	case StrT:
		return fnv1a(v.Str())
	case BlobT:
		return fnv1a(string(v.Blob()))
	}
	return 0
}

// hashIndex is the lookup contract shared by the serial hashTable and
// the sharded parallel build, so probe loops are agnostic to which
// build produced the index.
type hashIndex interface {
	lookup(v Value) []int
}

// shardedHash is a hash index built morsel-parallel as a power-of-two
// array of independent hashTable shards; a key lives in exactly the
// shard selected by its hash, so lookups touch one shard and per-key
// position lists keep the serial build's ascending order.
type shardedHash struct {
	shards []hashIndex
	mask   uint64
}

func (s *shardedHash) lookup(v Value) []int {
	return s.shards[hashKey(v)&s.mask].lookup(v)
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// buildHashIndex builds a position index over c, fanning the build out
// over the pool when the column is large enough. Void columns are
// always indexed serially: their dense index is O(1) to build.
func buildHashIndex(c Column) hashIndex {
	p, ok := poolFor(c.Len())
	if !ok || c.Type() == Void {
		return buildHash(c)
	}
	return buildHashPar(p, c)
}

// buildHashPar builds a sharded hash index in two morsel-parallel
// phases: first each morsel routes its positions to per-shard lists,
// then one task per shard inserts that shard's positions scanning the
// route lists in morsel order. The morsel-ordered second phase is what
// keeps every per-key position list identical to the serial build.
func buildHashPar(p *Pool, c Column) *shardedHash {
	n := c.Len()
	nShards := nextPow2(2 * p.Workers())
	sh := &shardedHash{shards: make([]hashIndex, nShards), mask: uint64(nShards - 1)}
	routes := make([][][]int, numMorsels(n))
	runMorsels(p, n, nil, nil, func(m, lo, hi int) {
		// Count-then-fill radix partition: hash each position once into
		// arena scratch, take per-shard counts, then carve one fresh
		// backing buffer into exact per-shard lists — only the route
		// lists (which phase two still needs) are allocated, and
		// positions stay ascending within each shard (the invariant the
		// ordered phase-two insert needs).
		rows := hi - lo
		a := GetArena()
		hs := a.Int64s(rows)
		counts := a.Ints(nShards)
		for s := range counts {
			counts[s] = 0
		}
		for i := lo; i < hi; i++ {
			s := hashKey(c.Get(i)) & sh.mask
			hs[i-lo] = int64(s)
			counts[s]++
		}
		buf := make([]int, rows)
		r := make([][]int, nShards)
		off := 0
		for s := 0; s < nShards; s++ {
			r[s] = buf[off : off+counts[s]]
			off += counts[s]
			counts[s] = 0 // becomes the shard's write cursor below
		}
		for i := lo; i < hi; i++ {
			s := hs[i-lo]
			r[s][counts[s]] = i
			counts[s]++
		}
		routes[m] = r
		PutArena(a)
	})
	keyAt := intReader(c)
	b := p.Batch()
	for s := 0; s < nShards; s++ {
		s := s
		//cobravet:allow allochot // one closure per shard is the phase-two fan-out unit; bounded by shard count
		b.Submit(func() {
			if keyAt != nil {
				total := 0
				for _, r := range routes {
					total += len(r[s])
				}
				sh.shards[s] = buildCompactInt(keyAt, total, func(visit func(i int)) {
					for _, r := range routes {
						for _, i := range r[s] {
							visit(i)
						}
					}
				})
				return
			}
			ht := newHashTable(c.Type(), n/nShards+1)
			for _, r := range routes {
				for _, i := range r[s] {
					ht.insert(c, i)
				}
			}
			sh.shards[s] = ht
		})
	}
	b.Wait()
	return sh
}
