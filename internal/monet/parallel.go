package monet

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"cobra/internal/obs"
)

// Parallel-execution metrics: how many blocks fan out, how wide, and
// how long the fork/join takes end to end (the threadcnt block of the
// paper's Fig. 4).
var (
	cParCalls    = obs.C("monet.parallel.calls")
	cParTasks    = obs.C("monet.parallel.tasks")
	gParWidth    = obs.G("monet.parallel.width")
	hParJoin     = obs.H("monet.parallel.join.latency")
	cParMapCalls = obs.C("monet.parallel.map.calls")
	hParMapJoin  = obs.H("monet.parallel.map.join.latency")
)

// Parallel mirrors Monet's intra-query parallel execution operator (the
// threadcnt block in the paper's Fig. 4): it runs the given tasks
// concurrently on at most threads worker goroutines and waits for all
// of them. A threads value <= 0 uses GOMAXPROCS. Every task runs even
// if others fail; all non-nil task errors are joined (errors.Join) in
// task order so callers see every failure.
func Parallel(threads int, tasks ...func() error) error {
	defer func(start time.Time) { hParJoin.Observe(time.Since(start)) }(time.Now())
	cParCalls.Inc()
	cParTasks.Add(int64(len(tasks)))
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(tasks) {
		threads = len(tasks)
	}
	gParWidth.Set(int64(threads))
	defer gParWidth.Set(0)
	errs := make([]error, len(tasks))
	if threads <= 1 {
		for i, t := range tasks {
			errs[i] = t()
		}
		return errors.Join(errs...)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// ParallelMap applies f to every index in [0, n) using at most threads
// workers, collecting results positionally. It is the bulk variant of
// Parallel used by kernel operators that partition a BAT.
func ParallelMap[T any](threads, n int, f func(i int) T) []T {
	defer func(start time.Time) { hParMapJoin.Observe(time.Since(start)) }(time.Now())
	cParMapCalls.Inc()
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
