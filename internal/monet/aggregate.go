package monet

import (
	"fmt"
	"math"

	"cobra/internal/obs"
)

// opAggregate counts kernel aggregate invocations (sum/avg/min/max).
var opAggregate = obs.C("monet.bat.aggregate")

// Count returns the number of associations.
func (b *BAT) Count() int64 { return int64(b.Len()) }

// Sum returns the sum of the tail column as float64. Non-numeric tails
// yield an error. Large BATs sum morsel-parallel with the per-morsel
// partials added in morsel order, so the result is the same for every
// pool width (and equals the serial fold exactly whenever the values
// are exactly representable, e.g. integer-valued tails).
func (b *BAT) Sum() (float64, error) {
	opAggregate.Inc()
	if err := b.requireNumericTail("sum"); err != nil {
		return 0, err
	}
	if p, ok := poolFor(b.Len()); ok {
		parts := make([]float64, numMorsels(b.Len()))
		runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += b.tail.Get(i).Float()
			}
			parts[m] = s
		})
		s := 0.0
		for _, v := range parts {
			s += v
		}
		return s, nil
	}
	s := 0.0
	for i := 0; i < b.Len(); i++ {
		s += b.tail.Get(i).Float()
	}
	return s, nil
}

// Avg returns the mean of the tail column; NaN for an empty BAT.
func (b *BAT) Avg() (float64, error) {
	opAggregate.Inc()
	if err := b.requireNumericTail("avg"); err != nil {
		return 0, err
	}
	if b.Len() == 0 {
		return math.NaN(), nil
	}
	s, _ := b.Sum()
	return s / float64(b.Len()), nil
}

// bestIdx returns the position of the extreme tail under sign (+1 for
// max, -1 for min), preferring the first occurrence on ties — the same
// position the serial strict-compare scan picks. Large BATs find a
// per-morsel best in parallel, then merge the morsel winners in morsel
// order with the same strict compare.
func (b *BAT) bestIdx(sign int) int {
	if p, ok := poolFor(b.Len()); ok {
		parts := make([]int, numMorsels(b.Len()))
		runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
			bi := lo
			for i := lo + 1; i < hi; i++ {
				if sign*Compare(b.tail.Get(i), b.tail.Get(bi)) > 0 {
					bi = i
				}
			}
			parts[m] = bi
		})
		bi := parts[0]
		for _, c := range parts[1:] {
			if sign*Compare(b.tail.Get(c), b.tail.Get(bi)) > 0 {
				bi = c
			}
		}
		return bi
	}
	bi := 0
	for i := 1; i < b.Len(); i++ {
		if sign*Compare(b.tail.Get(i), b.tail.Get(bi)) > 0 {
			bi = i
		}
	}
	return bi
}

// Max returns the largest tail value; ok is false for an empty BAT.
func (b *BAT) Max() (Value, bool) {
	opAggregate.Inc()
	if b.Len() == 0 {
		return Value{}, false
	}
	return b.tail.Get(b.bestIdx(1)), true
}

// Min returns the smallest tail value; ok is false for an empty BAT.
func (b *BAT) Min() (Value, bool) {
	opAggregate.Inc()
	if b.Len() == 0 {
		return Value{}, false
	}
	return b.tail.Get(b.bestIdx(-1)), true
}

// ArgMax returns the head whose tail is largest (MIL: reverse().find(max));
// ok is false for an empty BAT.
func (b *BAT) ArgMax() (Value, bool) {
	if b.Len() == 0 {
		return Value{}, false
	}
	return b.head.Get(b.bestIdx(1)), true
}

// ArgMin returns the head whose tail is smallest.
func (b *BAT) ArgMin() (Value, bool) {
	if b.Len() == 0 {
		return Value{}, false
	}
	return b.head.Get(b.bestIdx(-1)), true
}

// Group clusters associations by tail value and returns a BAT
// [head, oid] mapping each head to its group id, plus a BAT
// [oid, tail] mapping group ids to representative tail values.
func (b *BAT) Group() (members, groups *BAT) {
	members = NewBATCap(materialType(b.head.Type()), OIDT, b.Len())
	groups = NewBAT(OIDT, b.tail.Type())
	ids := map[string]OID{}
	next := OID(0)
	for i := 0; i < b.Len(); i++ {
		t := b.tail.Get(i)
		key := t.String()
		id, ok := ids[key]
		if !ok {
			id = next
			next++
			ids[key] = id
			groups.MustInsert(NewOID(id), t)
		}
		members.MustInsert(b.head.Get(i), NewOID(id))
	}
	return members, groups
}

// GroupSum computes, for a BAT [g, x] of numeric x, the per-group sum,
// returned as a BAT [g, dbl].
func (b *BAT) GroupSum() (*BAT, error) {
	return b.groupedFold("sum", func(acc, x float64) float64 { return acc + x }, 0, false)
}

// GroupCount computes the per-group association count as [g, int].
// Large inputs count morsel-parallel; per-morsel counts merge in
// morsel order, preserving the serial first-occurrence group order.
// Integer-domain and string heads take the arena-backed fast path:
// per-morsel group tables live in recycled scratch and only the
// exact-size partials are allocated.
func (b *BAT) GroupCount() (*BAT, error) {
	counts := map[string]int64{}
	order := []Value{}
	if p, ok := poolFor(b.Len()); ok {
		if out, ok := b.groupParFast(p, nil, 0, true); ok {
			return out, nil
		}
		parts := make([]groupPart[int64], numMorsels(b.Len()))
		runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
			// Sized for the worst case (every row its own group) so the
			// per-row loop never grows a slice or rehashes the map; the
			// scratch is MorselSize-bounded and dies with the morsel.
			part := groupPart[int64]{
				order: make([]Value, 0, hi-lo),
				keys:  make([]string, 0, hi-lo),
				accs:  make(map[string]int64, hi-lo),
			}
			for i := lo; i < hi; i++ {
				h := b.head.Get(i)
				k := h.String()
				if _, seen := part.accs[k]; !seen {
					part.order = append(part.order, h)
					part.keys = append(part.keys, k)
				}
				part.accs[k]++
			}
			parts[m] = part
		})
		for _, part := range parts {
			for gi, k := range part.keys {
				if _, seen := counts[k]; !seen {
					order = append(order, part.order[gi])
				}
				counts[k] += part.accs[k]
			}
		}
	} else {
		for i := 0; i < b.Len(); i++ {
			h := b.head.Get(i)
			k := h.String()
			if _, seen := counts[k]; !seen {
				order = append(order, h)
			}
			counts[k]++
		}
	}
	out := NewBAT(materialType(b.head.Type()), IntT)
	for _, h := range order {
		out.MustInsert(h, NewInt(counts[h.String()]))
	}
	return out, nil
}

// GroupMax computes the per-group maximum tail as [g, dbl].
func (b *BAT) GroupMax() (*BAT, error) {
	return b.groupedFold("max", math.Max, math.Inf(-1), true)
}

// GroupMin computes the per-group minimum tail as [g, dbl].
func (b *BAT) GroupMin() (*BAT, error) {
	return b.groupedFold("min", math.Min, math.Inf(1), true)
}

// GroupAvg computes the per-group mean tail as [g, dbl].
func (b *BAT) GroupAvg() (*BAT, error) {
	sums, err := b.GroupSum()
	if err != nil {
		return nil, err
	}
	counts, _ := b.GroupCount()
	out := NewBAT(materialType(b.head.Type()), FloatT)
	for i := 0; i < sums.Len(); i++ {
		h := sums.Head(i)
		c, _ := counts.Find(h)
		out.MustInsert(h, NewFloat(sums.Tail(i).Float()/float64(c.Int())))
	}
	return out, nil
}

// groupPart is the per-morsel partial state of a parallel grouped
// aggregation: the groups in first-occurrence order within the morsel
// (order holds the head values, keys their string keys) and the
// per-group partial accumulators.
type groupPart[T any] struct {
	order []Value
	keys  []string
	accs  map[string]T
}

// groupedFold folds the numeric tail per head group with f (which must
// be associative with identity init, so it doubles as the combiner for
// per-morsel partials). Large inputs fold morsel-parallel; partials
// merge in morsel order, so group order and — for exact folds like
// max/min or integer-valued sums — group values match the serial path
// for every pool width.
func (b *BAT) groupedFold(name string, f func(acc, x float64) float64, init float64, _ bool) (*BAT, error) {
	if err := b.requireNumericTail(name); err != nil {
		return nil, err
	}
	accs := map[string]float64{}
	order := []Value{}
	if p, ok := poolFor(b.Len()); ok {
		if out, ok := b.groupParFast(p, f, init, false); ok {
			return out, nil
		}
		parts := make([]groupPart[float64], numMorsels(b.Len()))
		runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
			// Sized for the worst case (every row its own group) so the
			// per-row loop never grows a slice or rehashes the map; the
			// scratch is MorselSize-bounded and dies with the morsel.
			part := groupPart[float64]{
				order: make([]Value, 0, hi-lo),
				keys:  make([]string, 0, hi-lo),
				accs:  make(map[string]float64, hi-lo),
			}
			for i := lo; i < hi; i++ {
				h := b.head.Get(i)
				k := h.String()
				if _, seen := part.accs[k]; !seen {
					part.order = append(part.order, h)
					part.keys = append(part.keys, k)
					part.accs[k] = init
				}
				part.accs[k] = f(part.accs[k], b.tail.Get(i).Float())
			}
			parts[m] = part
		})
		for _, part := range parts {
			for gi, k := range part.keys {
				if _, seen := accs[k]; !seen {
					order = append(order, part.order[gi])
					accs[k] = init
				}
				accs[k] = f(accs[k], part.accs[k])
			}
		}
	} else {
		for i := 0; i < b.Len(); i++ {
			h := b.head.Get(i)
			k := h.String()
			if _, seen := accs[k]; !seen {
				order = append(order, h)
				accs[k] = init
			}
			accs[k] = f(accs[k], b.tail.Get(i).Float())
		}
	}
	out := NewBAT(materialType(b.head.Type()), FloatT)
	for _, h := range order {
		out.MustInsert(h, NewFloat(accs[h.String()]))
	}
	return out, nil
}

// floatReader returns a raw float64 accessor over a numeric column,
// producing exactly the values Get(i).Float() would, without boxing.
// It returns nil for non-numeric columns.
func floatReader(c Column) func(i int) float64 {
	switch c := c.(type) {
	case *floatColumn:
		v := c.v
		return func(i int) float64 { return v[i] }
	case *intColumn:
		v := c.v
		return func(i int) float64 { return float64(v[i]) }
	case *oidColumn:
		v := c.v
		return func(i int) float64 { return float64(v[i]) }
	case *boolColumn:
		v := c.v
		return func(i int) float64 {
			if v[i] {
				return 1
			}
			return 0
		}
	}
	return nil
}

// strGroupPart is the per-morsel partial of a string-keyed fast
// grouped fold: group keys in first-occurrence order plus per-group
// partial counts and accumulators.
type strGroupPart struct {
	keys   []string
	accs   []float64
	counts []int64
}

// groupParFast is the allocation-disciplined morsel-parallel grouped
// fold. Heads with an integer domain (int, oid, bool) group on the
// raw int64 payload and string heads on the raw string — both
// bijective with the generic path's Value.String key, so group
// composition, first-occurrence order and values are identical to the
// generic morsel merge. Per-morsel group tables live in arena scratch
// (slot maps plus flat key/count/acc buffers); only the exact-size
// partials and the output BAT are allocated. Returns ok=false for
// head types it cannot key, sending the caller to the generic path.
func (b *BAT) groupParFast(p *Pool, f func(acc, x float64) float64, init float64, counting bool) (*BAT, bool) {
	var valAt func(i int) float64
	if !counting {
		if valAt = floatReader(b.tail); valAt == nil {
			return nil, false
		}
	}
	if keyAt := intReader(b.head); keyAt != nil {
		return b.groupParInt(p, keyAt, valAt, f, init, counting), true
	}
	if sc, ok := b.head.(*strColumn); ok {
		return b.groupParStr(p, sc.v, valAt, f, init, counting), true
	}
	return nil, false
}

// groupParInt is the integer-keyed arm of groupParFast.
func (b *BAT) groupParInt(p *Pool, keyAt func(i int) int64, valAt func(i int) float64, f func(acc, x float64) float64, init float64, counting bool) *BAT {
	parts := make([]fusedGroupPart, numMorsels(b.Len()))
	runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
		a := GetArena()
		slots := a.IntSlots()
		keys := a.Int64s(hi - lo)
		counts := a.Int64s(hi - lo)
		var accs []float64
		if !counting {
			accs = a.Floats(hi - lo)
		}
		ng := 0
		for i := lo; i < hi; i++ {
			k := keyAt(i)
			slot, seen := slots[k]
			if !seen {
				slot = int32(ng)
				//cobravet:allow allochot // arena slot map: one insert per DISTINCT group, bounded by group count not rows, and the map is recycled across morsels
				slots[k] = slot
				keys[ng] = k
				counts[ng] = 0
				if !counting {
					accs[ng] = init
				}
				ng++
			}
			counts[slot]++
			if !counting {
				accs[slot] = f(accs[slot], valAt(i))
			}
		}
		// Partials outlive the morsel: copy exact-size out of the arena.
		part := fusedGroupPart{
			keys:   append([]int64(nil), keys[:ng]...),
			counts: append([]int64(nil), counts[:ng]...),
		}
		if !counting {
			part.accs = append([]float64(nil), accs[:ng]...)
		}
		parts[m] = part
		PutArena(a)
	})
	total := 0
	for _, part := range parts {
		total += len(part.keys)
	}
	a := GetArena()
	gslots := a.IntSlots()
	keys := a.Int64s(total)
	counts := a.Int64s(total)
	var accs []float64
	if !counting {
		accs = a.Floats(total)
	}
	ng := 0
	for _, part := range parts {
		for gi, k := range part.keys {
			slot, seen := gslots[k]
			if !seen {
				slot = int32(ng)
				gslots[k] = slot
				keys[ng] = k
				counts[ng] = 0
				if !counting {
					accs[ng] = init
				}
				ng++
			}
			counts[slot] += part.counts[gi]
			if !counting {
				accs[slot] = f(accs[slot], part.accs[gi])
			}
		}
	}
	ht := b.head.Type()
	var out *BAT
	if counting {
		out = NewBATCap(materialType(ht), IntT, ng)
		for g := 0; g < ng; g++ {
			out.MustInsert(typedInt(ht, keys[g]), NewInt(counts[g]))
		}
	} else {
		out = NewBATCap(materialType(ht), FloatT, ng)
		for g := 0; g < ng; g++ {
			out.MustInsert(typedInt(ht, keys[g]), NewFloat(accs[g]))
		}
	}
	PutArena(a)
	return out
}

// groupParStr is the string-keyed arm of groupParFast. Grouping on the
// raw string skips both the Get boxing and the strconv.Quote of the
// generic path's Value.String key.
func (b *BAT) groupParStr(p *Pool, sv []string, valAt func(i int) float64, f func(acc, x float64) float64, init float64, counting bool) *BAT {
	parts := make([]strGroupPart, numMorsels(b.Len()))
	runMorsels(p, b.Len(), hPoolAggLat, hPoolAggSpd, func(m, lo, hi int) {
		a := GetArena()
		slots := a.StrSlots()
		keys := a.Strs(hi - lo)
		counts := a.Int64s(hi - lo)
		var accs []float64
		if !counting {
			accs = a.Floats(hi - lo)
		}
		ng := 0
		for i := lo; i < hi; i++ {
			k := sv[i]
			slot, seen := slots[k]
			if !seen {
				slot = int32(ng)
				//cobravet:allow allochot // arena slot map: one insert per DISTINCT group, bounded by group count not rows, and the map is recycled across morsels
				slots[k] = slot
				keys[ng] = k
				counts[ng] = 0
				if !counting {
					accs[ng] = init
				}
				ng++
			}
			counts[slot]++
			if !counting {
				accs[slot] = f(accs[slot], valAt(i))
			}
		}
		// Partials outlive the morsel: copy exact-size out of the arena.
		part := strGroupPart{
			keys:   append([]string(nil), keys[:ng]...),
			counts: append([]int64(nil), counts[:ng]...),
		}
		if !counting {
			part.accs = append([]float64(nil), accs[:ng]...)
		}
		parts[m] = part
		PutArena(a)
	})
	total := 0
	for _, part := range parts {
		total += len(part.keys)
	}
	a := GetArena()
	gslots := a.StrSlots()
	keys := a.Strs(total)
	counts := a.Int64s(total)
	var accs []float64
	if !counting {
		accs = a.Floats(total)
	}
	ng := 0
	for _, part := range parts {
		for gi, k := range part.keys {
			slot, seen := gslots[k]
			if !seen {
				slot = int32(ng)
				gslots[k] = slot
				keys[ng] = k
				counts[ng] = 0
				if !counting {
					accs[ng] = init
				}
				ng++
			}
			counts[slot] += part.counts[gi]
			if !counting {
				accs[slot] = f(accs[slot], part.accs[gi])
			}
		}
	}
	var out *BAT
	if counting {
		out = NewBATCap(StrT, IntT, ng)
		for g := 0; g < ng; g++ {
			out.MustInsert(NewStr(keys[g]), NewInt(counts[g]))
		}
	} else {
		out = NewBATCap(StrT, FloatT, ng)
		for g := 0; g < ng; g++ {
			out.MustInsert(NewStr(keys[g]), NewFloat(accs[g]))
		}
	}
	PutArena(a)
	return out
}

// Histogram returns a BAT [tail-value, int] counting occurrences of
// each distinct tail value.
func (b *BAT) Histogram() *BAT {
	return b.Reverse().mustGroupCount()
}

func (b *BAT) mustGroupCount() *BAT {
	out, err := b.GroupCount()
	if err != nil {
		panic(err)
	}
	return out
}

func (b *BAT) requireNumericTail(op string) error {
	switch b.tail.Type() {
	case IntT, FloatT, BoolT, OIDT:
		return nil
	default:
		return fmt.Errorf("%w: %s over %v tail", ErrTypeMismatch, op, b.tail.Type())
	}
}
