package monet

import "fmt"

// Column is a typed, growable vector of kernel values. Concrete
// implementations store values unboxed; Get/Append box values only at
// the kernel API boundary.
type Column interface {
	// Type returns the element type of the column.
	Type() Type
	// Len returns the number of elements.
	Len() int
	// Get returns the i-th element.
	Get(i int) Value
	// Append adds a value to the end of the column. The value must be
	// of the column's type (void columns accept anything and record
	// only length).
	Append(v Value)
	// Gather returns a new column holding the elements at the given
	// positions, in order.
	Gather(idx []int) Column
	// Clone returns a deep copy of the column.
	Clone() Column
}

// NewColumn returns an empty column of the given type.
func NewColumn(t Type) Column {
	switch t {
	case Void:
		return &voidColumn{}
	case OIDT:
		return &oidColumn{}
	case IntT:
		return &intColumn{}
	case FloatT:
		return &floatColumn{}
	case StrT:
		return &strColumn{}
	case BoolT:
		return &boolColumn{}
	case BlobT:
		return &blobColumn{}
	default:
		panic(fmt.Sprintf("monet: unknown column type %v", t))
	}
}

// NewColumnCap returns an empty column of the given type with capacity
// for n elements.
func NewColumnCap(t Type, n int) Column {
	switch t {
	case Void:
		return &voidColumn{}
	case OIDT:
		return &oidColumn{v: make([]OID, 0, n)}
	case IntT:
		return &intColumn{v: make([]int64, 0, n)}
	case FloatT:
		return &floatColumn{v: make([]float64, 0, n)}
	case StrT:
		return &strColumn{v: make([]string, 0, n)}
	case BoolT:
		return &boolColumn{v: make([]bool, 0, n)}
	case BlobT:
		return &blobColumn{v: make([][]byte, 0, n)}
	default:
		panic(fmt.Sprintf("monet: unknown column type %v", t))
	}
}

// voidColumn is a virtual dense sequence 0,1,2,... of OIDs offset by
// seq base zero; it stores only its length.
type voidColumn struct{ n int }

func (c *voidColumn) Type() Type { return Void }
func (c *voidColumn) Len() int   { return c.n }
func (c *voidColumn) Get(i int) Value {
	return NewOID(OID(i))
}
func (c *voidColumn) Append(Value) { c.n++ }
func (c *voidColumn) Gather(idx []int) Column {
	// Gathering from a dense sequence materializes real OIDs.
	out := &oidColumn{v: make([]OID, len(idx))}
	for i, p := range idx {
		out.v[i] = OID(p)
	}
	return out
}
func (c *voidColumn) Clone() Column { return &voidColumn{n: c.n} }

type oidColumn struct{ v []OID }

func (c *oidColumn) Type() Type      { return OIDT }
func (c *oidColumn) Len() int        { return len(c.v) }
func (c *oidColumn) Get(i int) Value { return NewOID(c.v[i]) }
func (c *oidColumn) Append(v Value)  { c.v = append(c.v, v.OID()) }
func (c *oidColumn) Gather(idx []int) Column {
	out := &oidColumn{v: make([]OID, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *oidColumn) Clone() Column {
	out := &oidColumn{v: make([]OID, len(c.v))}
	copy(out.v, c.v)
	return out
}

type intColumn struct{ v []int64 }

func (c *intColumn) Type() Type      { return IntT }
func (c *intColumn) Len() int        { return len(c.v) }
func (c *intColumn) Get(i int) Value { return NewInt(c.v[i]) }
func (c *intColumn) Append(v Value)  { c.v = append(c.v, v.Int()) }
func (c *intColumn) Gather(idx []int) Column {
	out := &intColumn{v: make([]int64, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *intColumn) Clone() Column {
	out := &intColumn{v: make([]int64, len(c.v))}
	copy(out.v, c.v)
	return out
}

type floatColumn struct{ v []float64 }

func (c *floatColumn) Type() Type      { return FloatT }
func (c *floatColumn) Len() int        { return len(c.v) }
func (c *floatColumn) Get(i int) Value { return NewFloat(c.v[i]) }
func (c *floatColumn) Append(v Value)  { c.v = append(c.v, v.Float()) }
func (c *floatColumn) Gather(idx []int) Column {
	out := &floatColumn{v: make([]float64, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *floatColumn) Clone() Column {
	out := &floatColumn{v: make([]float64, len(c.v))}
	copy(out.v, c.v)
	return out
}

type strColumn struct{ v []string }

func (c *strColumn) Type() Type      { return StrT }
func (c *strColumn) Len() int        { return len(c.v) }
func (c *strColumn) Get(i int) Value { return NewStr(c.v[i]) }
func (c *strColumn) Append(v Value)  { c.v = append(c.v, v.Str()) }
func (c *strColumn) Gather(idx []int) Column {
	out := &strColumn{v: make([]string, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *strColumn) Clone() Column {
	out := &strColumn{v: make([]string, len(c.v))}
	copy(out.v, c.v)
	return out
}

type boolColumn struct{ v []bool }

func (c *boolColumn) Type() Type      { return BoolT }
func (c *boolColumn) Len() int        { return len(c.v) }
func (c *boolColumn) Get(i int) Value { return NewBool(c.v[i]) }
func (c *boolColumn) Append(v Value)  { c.v = append(c.v, v.Bool()) }
func (c *boolColumn) Gather(idx []int) Column {
	out := &boolColumn{v: make([]bool, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *boolColumn) Clone() Column {
	out := &boolColumn{v: make([]bool, len(c.v))}
	copy(out.v, c.v)
	return out
}

// blobColumn stores opaque byte strings. Gather shares the underlying
// byte slices (values are treated as immutable); Clone deep-copies.
type blobColumn struct{ v [][]byte }

func (c *blobColumn) Type() Type      { return BlobT }
func (c *blobColumn) Len() int        { return len(c.v) }
func (c *blobColumn) Get(i int) Value { return NewBlob(c.v[i]) }
func (c *blobColumn) Append(v Value)  { c.v = append(c.v, v.Blob()) }
func (c *blobColumn) Gather(idx []int) Column {
	out := &blobColumn{v: make([][]byte, len(idx))}
	for i, p := range idx {
		out.v[i] = c.v[p]
	}
	return out
}
func (c *blobColumn) Clone() Column {
	out := &blobColumn{v: make([][]byte, len(c.v))}
	for i, b := range c.v {
		out.v[i] = append([]byte(nil), b...)
	}
	return out
}

// Floats returns the raw float64 slice backing a dbl column, or nil if
// the column is not a dbl column. The slice aliases the column; callers
// must not modify it.
func Floats(c Column) []float64 {
	if fc, ok := c.(*floatColumn); ok {
		return fc.v
	}
	return nil
}

// AppendFloats bulk-appends raw float64 values to a dbl column. It
// panics if the column is not a dbl column.
func AppendFloats(c Column, vs []float64) {
	fc, ok := c.(*floatColumn)
	if !ok {
		panic("monet: AppendFloats on non-dbl column")
	}
	fc.v = append(fc.v, vs...)
}
