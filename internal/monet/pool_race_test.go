package monet_test

import (
	"fmt"
	"sync"
	"testing"

	"cobra/internal/monet"
	"cobra/internal/wal"
)

// TestConcurrentOperatorsUnderRace drives the morsel-parallel
// operators from many goroutines over one shared, WAL-journaled Store
// while a writer keeps appending. Run with -race it proves the pool,
// the sharded hash build, and the store/journal locking compose
// without data races.
func TestConcurrentOperatorsUnderRace(t *testing.T) {
	store := monet.NewStore()
	mgr, err := wal.Open(t.TempDir(), store, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	prev := monet.SetDefaultPoolWorkers(4)
	defer monet.SetDefaultPoolWorkers(prev)

	n := monet.ParallelThreshold + 100
	big := monet.NewBATCap(monet.Void, monet.IntT, n)
	for i := 0; i < n; i++ {
		big.MustInsert(monet.VoidValue(), monet.NewInt(int64(i%1000)))
	}
	if err := store.Put("big", big); err != nil {
		t.Fatal(err)
	}
	build := monet.NewBAT(monet.IntT, monet.StrT)
	for k := 0; k < 1000; k += 4 {
		build.MustInsert(monet.NewInt(int64(k)), monet.NewStr(fmt.Sprintf("v%d", k)))
	}
	if err := store.Put("build", build); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("journal", monet.NewBAT(monet.IntT, monet.IntT)); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b, err := store.Get("big")
			if err != nil {
				errs[r] = err
				return
			}
			rhs, err := store.Get("build")
			if err != nil {
				errs[r] = err
				return
			}
			for iter := 0; iter < 5; iter++ {
				sel := b.Select(monet.NewInt(100), monet.NewInt(400))
				if sel.Len() == 0 {
					errs[r] = fmt.Errorf("reader %d: empty selection", r)
					return
				}
				if _, err := b.Join(rhs); err != nil {
					errs[r] = fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if _, err := b.Sum(); err != nil {
					errs[r] = fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	// A concurrent writer exercises the journal path while the readers
	// run parallel operators on their own BAT handles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := store.Append("journal", monet.NewInt(int64(i)), monet.NewInt(int64(i*2))); err != nil {
				errs[readers] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	j, err := store.Get("journal")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 200 {
		t.Fatalf("journal BAT has %d rows, want 200", j.Len())
	}
}
