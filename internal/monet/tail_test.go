package monet

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestWatermarkAndAppendColumns(t *testing.T) {
	s := NewStore()
	if rows, epoch := s.Watermark("missing"); rows != 0 || epoch != 0 {
		t.Fatalf("missing BAT watermark = (%d, %d), want (0, 0)", rows, epoch)
	}
	vals := NewBAT(Void, FloatT)
	vals.MustInsert(VoidValue(), NewFloat(1))
	if err := s.Put("feat", vals); err != nil {
		t.Fatal(err)
	}
	rows0, epoch0 := s.Watermark("feat")
	if rows0 != 1 {
		t.Fatalf("rows = %d, want 1", rows0)
	}
	from, err := s.AppendColumns(context.Background(), []string{"feat"},
		[][]Value{{NewFloat(2), NewFloat(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 {
		t.Fatalf("fromRow = %d, want 1", from)
	}
	rows1, epoch1 := s.Watermark("feat")
	if rows1 != 3 {
		t.Fatalf("rows = %d, want 3", rows1)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epoch1)
	}
	b, _ := s.Get("feat")
	for i, want := range []float64{1, 2, 3} {
		if got := b.Tail(i).Float(); got != want {
			t.Fatalf("row %d = %g, want %g", i, got, want)
		}
	}
}

func TestAppendColumnsGeneratesOIDHeads(t *testing.T) {
	s := NewStore()
	if err := s.Put("col", NewBAT(OIDT, StrT)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendColumns(context.Background(), []string{"col"},
		[][]Value{{NewStr("a"), NewStr("b")}}); err != nil {
		t.Fatal(err)
	}
	from, err := s.AppendColumns(context.Background(), []string{"col"},
		[][]Value{{NewStr("c")}})
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 {
		t.Fatalf("fromRow = %d, want 2", from)
	}
	b, _ := s.Get("col")
	for i := 0; i < 3; i++ {
		if got := b.Head(i).OID(); got != OID(i) {
			t.Fatalf("head %d = %d, want dense OID", i, got)
		}
	}
}

func TestAppendColumnsValidation(t *testing.T) {
	s := NewStore()
	s.Put("a", NewBAT(Void, FloatT))
	b := NewBAT(Void, FloatT)
	b.MustInsert(VoidValue(), NewFloat(1))
	s.Put("b", b)
	if _, err := s.AppendColumns(context.Background(), nil, nil); err == nil {
		t.Fatal("empty append did not error")
	}
	// Misaligned row counts across the group must be rejected.
	if _, err := s.AppendColumns(context.Background(), []string{"a", "b"},
		[][]Value{{NewFloat(1)}, {NewFloat(1)}}); err == nil {
		t.Fatal("misaligned BATs did not error")
	}
	// Ragged tails must be rejected.
	if _, err := s.AppendColumns(context.Background(), []string{"a", "a"},
		[][]Value{{NewFloat(1)}, {}}); err == nil {
		t.Fatal("ragged tails did not error")
	}
	if _, err := s.AppendColumns(context.Background(), []string{"missing"},
		[][]Value{{NewFloat(1)}}); err == nil {
		t.Fatal("missing BAT did not error")
	}
	// Value-typed heads cannot be generated.
	s.Put("strhead", NewBAT(StrT, StrT))
	if _, err := s.AppendColumns(context.Background(), []string{"strhead"},
		[][]Value{{NewStr("x")}}); err == nil {
		t.Fatal("str-headed append did not error")
	}
}

// TestAppendColumnsSnapshotIsolation verifies the copy-on-write
// contract: a *BAT fetched before an append never observes the
// appended rows, while a fetch after the append does.
func TestAppendColumnsSnapshotIsolation(t *testing.T) {
	s := NewStore()
	b0 := NewBAT(Void, FloatT)
	b0.MustInsert(VoidValue(), NewFloat(10))
	s.Put("feat", b0)
	before, _ := s.Get("feat")
	if _, err := s.AppendColumns(context.Background(), []string{"feat"},
		[][]Value{{NewFloat(20)}}); err != nil {
		t.Fatal(err)
	}
	if before.Len() != 1 {
		t.Fatalf("pre-append snapshot grew to %d rows", before.Len())
	}
	after, _ := s.Get("feat")
	if after.Len() != 2 || after.Tail(1).Float() != 20 {
		t.Fatalf("post-append fetch = %d rows", after.Len())
	}
}

// TestAppendColumnsConcurrentReaders hammers tail appends against
// readers iterating their own snapshots; run under -race this checks
// the copy-on-write append publishes rows safely.
func TestAppendColumnsConcurrentReaders(t *testing.T) {
	s := NewStore()
	s.Put("feat", NewBAT(Void, FloatT))
	s.Put("names", NewBAT(OIDT, StrT))
	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, err := s.Get("feat")
				if err != nil {
					continue
				}
				n := b.Len()
				sum := 0.0
				for i := 0; i < n; i++ {
					sum += b.Tail(i).Float()
				}
				nb, err := s.Get("names")
				if err != nil {
					continue
				}
				for i := 0; i < nb.Len(); i++ {
					_ = nb.Tail(i).Str()
				}
				_ = sum
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		if _, err := s.AppendColumns(context.Background(), []string{"feat"},
			[][]Value{{NewFloat(float64(i))}}); err != nil {
			t.Error(err)
			break
		}
		if _, err := s.AppendColumns(context.Background(), []string{"names"},
			[][]Value{{NewStr(fmt.Sprintf("n%d", i))}}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	rows, _ := s.Watermark("feat")
	if rows != rounds {
		t.Fatalf("rows = %d, want %d", rows, rounds)
	}
}

func TestAppendColumnsJournaled(t *testing.T) {
	s := NewStore()
	s.Put("feat", NewBAT(Void, FloatT))
	j := &recordingJournal{}
	s.SetJournal(j)
	if _, err := s.AppendColumns(context.Background(), []string{"feat"},
		[][]Value{{NewFloat(1), NewFloat(2)}}); err != nil {
		t.Fatal(err)
	}
	if len(j.appends) != 2 {
		t.Fatalf("journaled %d appends, want 2", len(j.appends))
	}
}

type recordingJournal struct {
	appends []string
}

func (j *recordingJournal) JournalPut(name string, b *BAT) error { return nil }
func (j *recordingJournal) JournalAppend(name string, h, t Value) error {
	j.appends = append(j.appends, name)
	return nil
}
func (j *recordingJournal) JournalDrop(name string) error { return nil }
