package monet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a named catalog of BATs: the kernel's database. It is safe
// for concurrent use.
type Store struct {
	mu   sync.RWMutex
	bats map[string]*BAT
}

// ErrNoSuchBAT is returned when a named BAT does not exist.
var ErrNoSuchBAT = errors.New("monet: no such BAT")

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{bats: make(map[string]*BAT)}
}

// Put registers (or replaces) a BAT under the given name.
func (s *Store) Put(name string, b *BAT) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bats[name] = b
}

// Get returns the BAT registered under name.
func (s *Store) Get(name string) (*BAT, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.bats[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBAT, name)
	}
	return b, nil
}

// Has reports whether a BAT is registered under name.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.bats[name]
	return ok
}

// Drop removes the BAT registered under name, if any.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bats, name)
}

// Names returns the sorted names of all registered BATs.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bats))
	for n := range s.bats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered BATs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bats)
}

// Stats summarizes the store contents.
type Stats struct {
	// BATs is the number of registered BATs.
	BATs int
	// BUNs is the total association count across all BATs.
	BUNs int
	// ByPrefix counts BUNs per first path segment of the BAT name
	// (before the first '/').
	ByPrefix map[string]int
}

// Stats computes summary statistics over the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{ByPrefix: map[string]int{}}
	for name, b := range s.bats {
		st.BATs++
		st.BUNs += b.Len()
		prefix := name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			prefix = name[:i]
		}
		st.ByPrefix[prefix] += b.Len()
	}
	return st
}

// batFileMagic identifies the snapshot file format.
const batFileMagic = uint32(0xC0B2A001)

// WriteTo serializes the BAT in the kernel snapshot format.
func (b *BAT) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if err := writeU32(cw, batFileMagic); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(b.head.Type())<<8|uint32(b.tail.Type())); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(b.Len())); err != nil {
		return cw.n, err
	}
	for i := 0; i < b.Len(); i++ {
		// Serialize by declared column type: a void column boxes its
		// elements as OIDs, which the reader skips entirely.
		if b.head.Type() != Void {
			if err := writeValue(cw, b.Head(i)); err != nil {
				return cw.n, err
			}
		}
		if b.tail.Type() != Void {
			if err := writeValue(cw, b.Tail(i)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, bw.Flush()
}

// ReadBAT deserializes a BAT from the kernel snapshot format.
func ReadBAT(r io.Reader) (*BAT, error) {
	br := bufio.NewReader(r)
	magic, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if magic != batFileMagic {
		return nil, fmt.Errorf("monet: bad snapshot magic %#x", magic)
	}
	types, err := readU32(br)
	if err != nil {
		return nil, err
	}
	ht, tt := Type(types>>8), Type(types&0xff)
	n, err := readU32(br)
	if err != nil {
		return nil, err
	}
	b := NewBATCap(ht, tt, int(n))
	for i := uint32(0); i < n; i++ {
		h, err := readValue(br, ht)
		if err != nil {
			return nil, err
		}
		t, err := readValue(br, tt)
		if err != nil {
			return nil, err
		}
		b.head.Append(h)
		b.tail.Append(t)
	}
	return b, nil
}

// Snapshot writes every BAT in the store to dir, one file per BAT.
func (s *Store) Snapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, b := range s.bats {
		f, err := os.Create(filepath.Join(dir, encodeBATFileName(name)))
		if err != nil {
			return err
		}
		if _, err := b.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot reads every BAT file from dir into the store,
// replacing same-named BATs.
func (s *Store) LoadSnapshot(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bat") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		b, err := ReadBAT(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("monet: loading %s: %w", e.Name(), err)
		}
		s.Put(decodeBATFileName(e.Name()), b)
	}
	return nil
}

// encodeBATFileName maps a BAT name to a filesystem-safe file name.
func encodeBATFileName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			sb.WriteRune(r)
		default:
			fmt.Fprintf(&sb, "%%%04x", r)
		}
	}
	sb.WriteString(".bat")
	return sb.String()
}

func decodeBATFileName(file string) string {
	name := strings.TrimSuffix(file, ".bat")
	var sb strings.Builder
	for i := 0; i < len(name); {
		if name[i] == '%' && i+5 <= len(name) {
			var r rune
			if _, err := fmt.Sscanf(name[i+1:i+5], "%04x", &r); err == nil {
				sb.WriteRune(r)
				i += 5
				continue
			}
		}
		sb.WriteByte(name[i])
		i++
	}
	return sb.String()
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeValue(w io.Writer, v Value) error {
	switch v.Typ {
	case Void:
		return nil
	case OIDT, IntT, BoolT:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		_, err := w.Write(buf[:])
		return err
	case FloatT:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		_, err := w.Write(buf[:])
		return err
	case StrT:
		if err := writeU32(w, uint32(len(v.S))); err != nil {
			return err
		}
		_, err := io.WriteString(w, v.S)
		return err
	default:
		return fmt.Errorf("monet: cannot serialize %v", v.Typ)
	}
}

func readValue(r *bufio.Reader, t Type) (Value, error) {
	switch t {
	case Void:
		return VoidValue(), nil
	case OIDT, IntT, BoolT:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Value{Typ: t, I: int64(binary.LittleEndian.Uint64(buf[:]))}, nil
	case FloatT:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case StrT:
		n, err := readU32(r)
		if err != nil {
			return Value{}, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		return NewStr(string(buf)), nil
	default:
		return Value{}, fmt.Errorf("monet: cannot deserialize %v", t)
	}
}
