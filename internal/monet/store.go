package monet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cobra/internal/obs"
)

// cJournalErr counts journal write failures observed by the store. A
// non-zero value means durability is degraded: some mutations were
// applied in memory but could not be logged.
var cJournalErr = obs.C("monet.store.journal_errors")

// Journal receives a record for every store-level mutation before it
// becomes visible, in mutation order. The durability subsystem
// (internal/wal) implements it with a write-ahead log; a nil journal
// keeps the store purely in-memory, as in the original Monet kernel.
//
// Journal methods are invoked while the store's write lock is held, so
// implementations observe mutations in exactly the order they are
// applied and must not call back into the Store.
type Journal interface {
	// JournalPut records the registration (or replacement) of a whole
	// BAT under name. The BAT must be serialized or copied before the
	// call returns; it may be mutated afterwards.
	JournalPut(name string, b *BAT) error
	// JournalAppend records the append of one (head, tail) association
	// to the named BAT.
	JournalAppend(name string, h, t Value) error
	// JournalDrop records the removal of the named BAT.
	JournalDrop(name string) error
}

// Store is a named catalog of BATs: the kernel's database. It is safe
// for concurrent use. With a Journal attached (SetJournal), every
// mutation is logged before it is applied, giving the write-ahead
// discipline the durability layer builds on.
//
// Every mutation of a named BAT (Put, Append, Drop) bumps that name's
// epoch counter, which lazily invalidates the adaptive access-path
// structures (zone maps, crackers, dictionaries) kept per name; see
// accesspath.go. Recovery goes through Put, so restored BATs arrive
// with fresh epochs and indexes rebuild on first use.
type Store struct {
	mu      sync.RWMutex
	bats    map[string]*BAT
	epochs  map[string]uint64
	journal Journal

	// idxMu guards indexes. Lock order: mu before idxMu before the
	// per-index batIndex.mu; never the reverse.
	idxMu   sync.Mutex
	indexes map[string]*batIndex
}

// ErrNoSuchBAT is returned when a named BAT does not exist.
var ErrNoSuchBAT = errors.New("monet: no such BAT")

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{bats: make(map[string]*BAT), epochs: make(map[string]uint64)}
}

// bumpEpochLocked advances the mutation epoch of a named BAT. It must
// run under the store's write lock, in the same critical section as
// the mutation it records, so index readers can never observe a new
// column state under an old epoch (the cobravet epochguard analyzer
// enforces the pairing).
func (s *Store) bumpEpochLocked(name string) {
	if s.epochs == nil {
		s.epochs = make(map[string]uint64)
	}
	s.epochs[name]++
	cIdxInvalidations.Inc()
}

// Epoch returns the mutation epoch of a named BAT: 0 if the name was
// never written, monotonically increasing across Put/Append/Drop
// (epochs survive Drop so re-registering a name keeps invalidating).
func (s *Store) Epoch(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epochs[name]
}

// Epochs returns the mutation epochs of the named BATs, in argument
// order, read under a single lock acquisition: the vector is a
// consistent snapshot, never torn across a concurrent mutation. The
// serving layer's result cache fingerprints a query's dependency set
// with it — a mutation committing between two reads must move the
// whole vector, not half of it.
func (s *Store) Epochs(names []string) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, len(names))
	for i, n := range names {
		out[i] = s.epochs[n]
	}
	return out
}

// SetJournal attaches (or, with nil, detaches) the mutation journal.
// Attach after recovery has replayed historical mutations, so replay
// itself is not re-logged.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Put registers (or replaces) a BAT under the given name. With a
// journal attached the mutation is logged first; a journal error is
// returned (and counted in monet.store.journal_errors) but the
// in-memory mutation still applies, so callers that ignore the error
// keep the original main-memory semantics.
func (s *Store) Put(name string, b *BAT) error {
	return s.PutCtx(context.Background(), name, b)
}

// PutCtx is Put under a trace context: time blocked on the journal
// (including any WAL fsync group commit) is attributed to the trace's
// WAL-wait resource counter. The Journal interface itself stays
// context-free.
func (s *Store) PutCtx(ctx context.Context, name string, b *BAT) error {
	res := obs.SpanFromContext(ctx).Resources()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.journal != nil {
		jStart := time.Now()
		if err = s.journal.JournalPut(name, b); err != nil {
			cJournalErr.Inc()
		}
		res.AddWALWait(time.Since(jStart))
	}
	s.bats[name] = b
	s.bumpEpochLocked(name)
	return err
}

// Append appends one (head, tail) association to the named BAT,
// journaling the mutation when a journal is attached. It is the
// durable counterpart of Get-then-Insert: direct BAT mutation bypasses
// the journal and is lost on crash.
func (s *Store) Append(name string, h, t Value) error {
	return s.AppendCtx(context.Background(), name, h, t)
}

// AppendCtx is Append under a trace context; see PutCtx for the
// WAL-wait attribution contract.
func (s *Store) AppendCtx(ctx context.Context, name string, h, t Value) error {
	res := obs.SpanFromContext(ctx).Resources()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bats[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBAT, name)
	}
	if err := b.Insert(h, t); err != nil {
		return err
	}
	s.bumpEpochLocked(name)
	if s.journal != nil {
		jStart := time.Now()
		err := s.journal.JournalAppend(name, h, t)
		res.AddWALWait(time.Since(jStart))
		if err != nil {
			cJournalErr.Inc()
			return err
		}
	}
	return nil
}

// Get returns the BAT registered under name.
func (s *Store) Get(name string) (*BAT, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.bats[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBAT, name)
	}
	return b, nil
}

// Has reports whether a BAT is registered under name.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.bats[name]
	return ok
}

// Drop removes the BAT registered under name, if any. Like Put, the
// mutation is journaled first and a journal error is reported but does
// not undo the in-memory drop.
func (s *Store) Drop(name string) error {
	return s.DropCtx(context.Background(), name)
}

// DropCtx is Drop under a trace context; see PutCtx for the WAL-wait
// attribution contract.
func (s *Store) DropCtx(ctx context.Context, name string) error {
	res := obs.SpanFromContext(ctx).Resources()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.journal != nil {
		jStart := time.Now()
		if err = s.journal.JournalDrop(name); err != nil {
			cJournalErr.Inc()
		}
		res.AddWALWait(time.Since(jStart))
	}
	delete(s.bats, name)
	s.bumpEpochLocked(name)
	s.dropIndex(name)
	return err
}

// Names returns the sorted names of all registered BATs.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bats))
	for n := range s.bats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered BATs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bats)
}

// Stats summarizes the store contents.
type Stats struct {
	// BATs is the number of registered BATs.
	BATs int
	// BUNs is the total association count across all BATs.
	BUNs int
	// ByPrefix counts BUNs per first path segment of the BAT name
	// (before the first '/').
	ByPrefix map[string]int
}

// Stats computes summary statistics over the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{ByPrefix: map[string]int{}}
	for name, b := range s.bats {
		st.BATs++
		st.BUNs += b.Len()
		prefix := name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			prefix = name[:i]
		}
		st.ByPrefix[prefix] += b.Len()
	}
	return st
}

// batFileMagic identifies the snapshot file format.
const batFileMagic = uint32(0xC0B2A001)

// WriteTo serializes the BAT in the kernel snapshot format.
func (b *BAT) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if err := writeU32(cw, batFileMagic); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(b.head.Type())<<8|uint32(b.tail.Type())); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(b.Len())); err != nil {
		return cw.n, err
	}
	for i := 0; i < b.Len(); i++ {
		// Serialize by declared column type: a void column boxes its
		// elements as OIDs, which the reader skips entirely.
		if b.head.Type() != Void {
			if err := WriteValue(cw, b.Head(i)); err != nil {
				return cw.n, err
			}
		}
		if b.tail.Type() != Void {
			if err := WriteValue(cw, b.Tail(i)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, bw.Flush()
}

// ReadBAT deserializes a BAT from the kernel snapshot format.
func ReadBAT(r io.Reader) (*BAT, error) {
	br := bufio.NewReader(r)
	magic, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if magic != batFileMagic {
		return nil, fmt.Errorf("monet: bad snapshot magic %#x", magic)
	}
	types, err := readU32(br)
	if err != nil {
		return nil, err
	}
	ht, tt := Type(types>>8), Type(types&0xff)
	n, err := readU32(br)
	if err != nil {
		return nil, err
	}
	b := NewBATCap(ht, tt, int(n))
	for i := uint32(0); i < n; i++ {
		h, err := ReadValue(br, ht)
		if err != nil {
			return nil, err
		}
		t, err := ReadValue(br, tt)
		if err != nil {
			return nil, err
		}
		b.head.Append(h)
		b.tail.Append(t)
	}
	return b, nil
}

// Snapshot writes every BAT in the store to dir, one file per BAT.
// The snapshot is written into a temporary sibling directory, synced,
// and atomically renamed into place, so a crash mid-snapshot never
// leaves a half-written, unloadable snapshot at dir: readers observe
// either the previous complete snapshot or the new one.
func (s *Store) Snapshot(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(dir)
}

// Checkpoint writes an atomic snapshot of the store to dir while
// holding the store's write lock, so no mutation can interleave with
// the snapshot. If prepare is non-nil it runs under the same lock
// before any state is written — the durability layer uses it to rotate
// the write-ahead log at the exact point the snapshot captures, making
// "snapshot + later segments" a consistent recovery pair.
func (s *Store) Checkpoint(dir string, prepare func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prepare != nil {
		if err := prepare(); err != nil {
			return err
		}
	}
	return s.snapshotLocked(dir)
}

// snapshotLocked writes the snapshot with at least a read lock held.
func (s *Store) snapshotLocked(dir string) error {
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".snap-tmp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for name, b := range s.bats {
		if err := writeBATFile(filepath.Join(tmp, encodeBATFileName(name)), b); err != nil {
			return err
		}
	}
	if err := syncDir(tmp); err != nil {
		return err
	}
	// Swap the finished snapshot into place. If dir already holds an
	// old snapshot, move it aside first (rename cannot replace a
	// non-empty directory); the one crash window between the two
	// renames leaves no dir at all — never a torn one.
	if _, err := os.Stat(dir); err == nil {
		old := dir + ".old"
		if err := os.RemoveAll(old); err != nil {
			return err
		}
		if err := os.Rename(dir, old); err != nil {
			return err
		}
		defer os.RemoveAll(old)
	}
	if err := os.Rename(tmp, dir); err != nil {
		return err
	}
	return syncDir(parent)
}

// writeBATFile writes one BAT to path and fsyncs it.
func writeBATFile(path string, b *BAT) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := b.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadSnapshot reads every BAT file from dir into the store,
// replacing same-named BATs.
func (s *Store) LoadSnapshot(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bat") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		b, err := ReadBAT(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("monet: loading %s: %w", e.Name(), err)
		}
		s.Put(decodeBATFileName(e.Name()), b)
	}
	return nil
}

// encodeBATFileName maps a BAT name to a filesystem-safe file name.
func encodeBATFileName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			sb.WriteRune(r)
		default:
			fmt.Fprintf(&sb, "%%%04x", r)
		}
	}
	sb.WriteString(".bat")
	return sb.String()
}

func decodeBATFileName(file string) string {
	name := strings.TrimSuffix(file, ".bat")
	var sb strings.Builder
	for i := 0; i < len(name); {
		if name[i] == '%' && i+5 <= len(name) {
			var r rune
			if _, err := fmt.Sscanf(name[i+1:i+5], "%04x", &r); err == nil {
				sb.WriteRune(r)
				i += 5
				continue
			}
		}
		sb.WriteByte(name[i])
		i++
	}
	return sb.String()
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// WriteValue serializes one kernel value in the snapshot wire format:
// fixed 8 bytes for integral and float types, a u32 length prefix plus
// payload for str and blob, nothing at all for void. The write-ahead
// log and the snapshot files share this codec.
func WriteValue(w io.Writer, v Value) error {
	switch v.Typ {
	case Void:
		return nil
	case OIDT, IntT, BoolT:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		_, err := w.Write(buf[:])
		return err
	case FloatT:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		_, err := w.Write(buf[:])
		return err
	case StrT:
		if err := writeU32(w, uint32(len(v.S))); err != nil {
			return err
		}
		_, err := io.WriteString(w, v.S)
		return err
	case BlobT:
		if err := writeU32(w, uint32(len(v.B))); err != nil {
			return err
		}
		_, err := w.Write(v.B)
		return err
	default:
		return fmt.Errorf("monet: cannot serialize %v", v.Typ)
	}
}

// ReadValue deserializes one kernel value of type t from the snapshot
// wire format; the inverse of WriteValue.
func ReadValue(r io.Reader, t Type) (Value, error) {
	switch t {
	case Void:
		return VoidValue(), nil
	case OIDT, IntT, BoolT:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Value{Typ: t, I: int64(binary.LittleEndian.Uint64(buf[:]))}, nil
	case FloatT:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case StrT:
		n, err := readU32(r)
		if err != nil {
			return Value{}, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		return NewStr(string(buf)), nil
	case BlobT:
		n, err := readU32(r)
		if err != nil {
			return Value{}, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		return NewBlob(buf), nil
	default:
		return Value{}, fmt.Errorf("monet: cannot deserialize %v", t)
	}
}
