package monet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// batsEqual compares two BATs association-by-association.
func batsEqual(a, b *BAT) bool {
	if a.HeadType() != b.HeadType() || a.TailType() != b.TailType() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !Equal(a.Head(i), b.Head(i)) || !Equal(a.Tail(i), b.Tail(i)) {
			return false
		}
	}
	return true
}

// TestBATSerializationRoundTripAllTypes round-trips a BAT of every
// column type through the snapshot wire format, both populated and
// empty.
func TestBATSerializationRoundTripAllTypes(t *testing.T) {
	cases := map[string]*BAT{}

	ints := NewBAT(Void, IntT)
	for _, v := range []int64{0, -1, 42, 1 << 60} {
		ints.MustInsert(VoidValue(), NewInt(v))
	}
	cases["int"] = ints

	floats := NewBAT(OIDT, FloatT)
	for i, v := range []float64{0, -2.5, 3.14159, 1e300} {
		floats.MustInsert(NewOID(OID(i)), NewFloat(v))
	}
	cases["float"] = floats

	strs := NewBAT(Void, StrT)
	for _, v := range []string{"", "schumacher", "grand prix", "nürburgring\n\x00"} {
		strs.MustInsert(VoidValue(), NewStr(v))
	}
	cases["string"] = strs

	blobs := NewBAT(OIDT, BlobT)
	for i, v := range [][]byte{nil, {0}, {0xde, 0xad, 0xbe, 0xef}, bytes.Repeat([]byte{7}, 1000)} {
		blobs.MustInsert(NewOID(OID(i)), NewBlob(v))
	}
	cases["blob"] = blobs

	bools := NewBAT(Void, BoolT)
	bools.MustInsert(VoidValue(), NewBool(true))
	bools.MustInsert(VoidValue(), NewBool(false))
	cases["bool"] = bools

	oids := NewBAT(OIDT, OIDT)
	oids.MustInsert(NewOID(1), NewOID(2))
	cases["oid"] = oids

	// Empty BATs of each type.
	for _, tt := range []Type{IntT, FloatT, StrT, BlobT, BoolT, OIDT} {
		cases["empty-"+tt.String()] = NewBAT(Void, tt)
	}
	cases["empty-void-void"] = NewBAT(Void, Void)

	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := b.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBAT(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !batsEqual(b, got) {
				t.Fatalf("round trip mismatch:\n in: %s\nout: %s", b.Dump(10), got.Dump(10))
			}
		})
	}
}

// TestStoreSnapshotRoundTripEscapedNames snapshots BATs whose names
// need filesystem escaping and verifies names and contents survive.
func TestStoreSnapshotRoundTripEscapedNames(t *testing.T) {
	names := []string{
		"plain",
		"f1/imola/laps",             // path separators
		"per cent % and space",      // the escape character itself
		"unicode/nürburgring/日本",    // multi-byte runes
		"dots.and-dashes_ok.v2",     // passthrough characters
		"..",                        // must not escape the directory
		"trailing/",                 // empty last segment
		strings.Repeat("long-", 20), // long name
	}
	src := NewStore()
	for i, name := range names {
		b := NewBAT(Void, StrT)
		b.MustInsert(VoidValue(), NewStr(name)) // content encodes the name
		b.MustInsert(VoidValue(), NewStr("row2"))
		if i%2 == 0 {
			b = NewBAT(Void, StrT) // every other one empty
		}
		if err := src.Put(name, b); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := src.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Nothing may land outside the snapshot directory.
	parentEntries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(parentEntries) != 1 {
		t.Fatalf("snapshot escaped its directory: %v", parentEntries)
	}

	dst := NewStore()
	if err := dst.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != len(names) {
		t.Fatalf("loaded %d BATs, want %d: %v", dst.Len(), len(names), dst.Names())
	}
	for _, name := range names {
		b, err := dst.Get(name)
		if err != nil {
			t.Fatalf("name %q did not survive the round trip: %v", name, err)
		}
		if b.Len() > 0 && b.Tail(0).Str() != name {
			t.Fatalf("BAT %q holds %q", name, b.Tail(0).Str())
		}
	}
}

// TestSnapshotOverwriteKeepsOldUntilComplete verifies that
// re-snapshotting over an existing directory swaps atomically and the
// result loads.
func TestSnapshotOverwriteKeepsOldUntilComplete(t *testing.T) {
	s := NewStore()
	b := NewBAT(Void, IntT)
	b.MustInsert(VoidValue(), NewInt(1))
	if err := s.Put("a", b); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := s.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	b2 := NewBAT(Void, IntT)
	b2.MustInsert(VoidValue(), NewInt(2))
	if err := s.Put("b", b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	got := NewStore()
	if err := got.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if !got.Has("a") || !got.Has("b") {
		t.Fatalf("second snapshot contents: %v", got.Names())
	}
	// Neither temp nor .old residue may remain.
	entries, _ := os.ReadDir(filepath.Dir(dir))
	for _, e := range entries {
		if e.Name() != "snap" {
			t.Errorf("residue %q next to snapshot", e.Name())
		}
	}
}

// TestStoreAppendJournalsAndApplies exercises the durable append path
// without a journal attached (pure in-memory semantics).
func TestStoreAppend(t *testing.T) {
	s := NewStore()
	if err := s.Append("missing", NewOID(1), NewInt(1)); err == nil {
		t.Fatal("Append to missing BAT succeeded")
	}
	if err := s.Put("t", NewBAT(OIDT, IntT)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("t", NewOID(1), NewInt(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("t", NewStr("wrong"), NewInt(10)); err == nil {
		t.Fatal("type-mismatched Append succeeded")
	}
	b, _ := s.Get("t")
	if b.Len() != 1 || b.Tail(0).Int() != 10 {
		t.Fatalf("appended BAT: %s", b.Dump(5))
	}
}

// TestBlobValueSemantics pins down comparison, hashing and stringing
// of the blob type.
func TestBlobValueSemantics(t *testing.T) {
	a := NewBlob([]byte{1, 2})
	b := NewBlob([]byte{1, 3})
	if Compare(a, b) >= 0 || !Equal(a, NewBlob([]byte{1, 2})) {
		t.Fatal("blob compare broken")
	}
	if a.String() != "blob(2)" {
		t.Fatalf("blob string = %q", a.String())
	}
	// Join over blob keys goes through the hash table.
	left := NewBAT(BlobT, IntT)
	left.MustInsert(a, NewInt(1))
	left.MustInsert(b, NewInt(2))
	right := NewBAT(BlobT, StrT)
	right.MustInsert(NewBlob([]byte{1, 2}), NewStr("x"))
	j, err := left.Reverse().Join(right)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Tail(0).Str() != "x" {
		t.Fatalf("blob join: %s", j.Dump(5))
	}
}
