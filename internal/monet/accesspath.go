package monet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/obs"
)

// Adaptive access paths: the kernel's self-organizing alternative to a
// full scan for tail-range selects over named BATs. Three cooperating
// structures live beside each stored BAT:
//
//   - a zone map of per-morsel min/max summaries, built lazily on the
//     first indexed select, that prunes whole morsels before the
//     morsel-parallel scan runs (zonemap.go);
//   - a cracker copy of numeric tails, incrementally range-partitioned
//     as a side effect of each select, so hot columns converge toward
//     sorted and repeated selects become binary search + narrow copy
//     (crack.go);
//   - a dictionary for string tails, so equality and range selects
//     compare small integer codes and distinct counts come for free
//     (dict.go).
//
// All structures are keyed to the store's per-name mutation epoch:
// Put/Append/Drop bump the epoch under the write lock, and the next
// indexed select observes the mismatch and rebuilds from scratch.
// Results are always byte-identical to the naive scan; any predicate
// an index cannot answer exactly (type-mismatched bounds, NaN values,
// NaN bounds) falls back to colSelectIdx.

// Access-path metrics (monet.index.*): how often each structure is
// built and consulted, how much work pruning saves, and how far the
// crackers have converged.
var (
	cIdxSelects       = obs.C("monet.index.selects")
	cIdxInvalidations = obs.C("monet.index.invalidations")
	cZmBuilds         = obs.C("monet.index.zonemap.builds")
	cZmScanned        = obs.C("monet.index.zonemap.morsels_scanned")
	cZmPruned         = obs.C("monet.index.zonemap.morsels_pruned")
	cCrBuilds         = obs.C("monet.index.crack.builds")
	cCrCracks         = obs.C("monet.index.crack.cracks")
	hCrPieces         = obs.H("monet.index.crack.pieces")
	cDictBuilds       = obs.C("monet.index.dict.builds")
	cDictHits         = obs.C("monet.index.dict.hits")
	cDictMisses       = obs.C("monet.index.dict.misses")
)

// AccessPath identifies how a range select over a stored BAT was (or
// would be) executed.
type AccessPath int

// The access paths the cost gate chooses between.
const (
	// PathScan is the full morsel-parallel scan of PR 4.
	PathScan AccessPath = iota
	// PathZoneMap scans only the morsels whose [min,max] intersects
	// the predicate range.
	PathZoneMap
	// PathCrack answers from the incrementally range-partitioned
	// cracker copy of the column.
	PathCrack
	// PathDict answers string predicates over dictionary codes.
	PathDict
)

// String renders the access path the way EXPLAIN prints it.
func (p AccessPath) String() string {
	switch p {
	case PathZoneMap:
		return "zonemap"
	case PathCrack:
		return "crack"
	case PathDict:
		return "dict"
	}
	return "scan"
}

// AccessInfo describes one (planned or executed) indexed select.
type AccessInfo struct {
	// Path is the access path chosen by the cost gate.
	Path AccessPath
	// Rows is the size of the scanned BAT.
	Rows int
	// Matched is the number of qualifying rows (0 for a pure plan).
	Matched int
	// MorselsTotal and MorselsPruned report zone-map effectiveness:
	// pruned morsels are never touched by the scan.
	MorselsTotal  int
	MorselsPruned int
	// CrackPieces is the cracker partition count after the select.
	CrackPieces int
	// DictSize is the dictionary entry count (distinct tail values).
	DictSize int
}

// String renders the info as the single access-path line EXPLAIN
// ANALYZE and trace spans attach.
func (ai *AccessInfo) String() string {
	s := fmt.Sprintf("path=%s rows=%d matched=%d", ai.Path, ai.Rows, ai.Matched)
	if ai.MorselsTotal > 0 {
		s += fmt.Sprintf(" morsels=%d pruned=%d", ai.MorselsTotal, ai.MorselsPruned)
	}
	if ai.CrackPieces > 0 {
		s += fmt.Sprintf(" pieces=%d", ai.CrackPieces)
	}
	if ai.DictSize > 0 {
		s += fmt.Sprintf(" dict=%d", ai.DictSize)
	}
	return s
}

// DefaultCrackThreshold is how many indexed selects a numeric column
// absorbs before the cost gate invests in a cracker copy: the first
// selects are served by the (cheap) zone map, and columns filtered
// repeatedly — the cracking-friendly workload — graduate to the
// cracker.
const DefaultCrackThreshold = 2

var crackAfter atomic.Int64

func init() { crackAfter.Store(DefaultCrackThreshold) }

// SetCrackThreshold overrides how many indexed selects a numeric
// column absorbs before graduating from zone-map pruning to cracking
// and returns the previous value. n <= 0 restores the default. It is
// a tuning knob for benchmarks and experiments; production code
// should leave the gate at DefaultCrackThreshold.
func SetCrackThreshold(n int) int {
	if n <= 0 {
		n = DefaultCrackThreshold
	}
	return int(crackAfter.Swap(int64(n)))
}

// batIndex is the adaptive index state of one named BAT. All fields
// are guarded by mu; epoch records the store epoch the structures were
// built against.
type batIndex struct {
	mu      sync.Mutex
	epoch   uint64
	selects int  // indexed selects since the last rebuild
	unsafe  bool // NaN observed in the column: always fall back to scan
	zm      *zoneMap
	cr      cracker
	dict    *strDict
}

// syncEpoch discards every structure when the store epoch moved.
func (ix *batIndex) syncEpoch(epoch uint64) {
	if ix.epoch == epoch {
		return
	}
	ix.epoch = epoch
	ix.selects = 0
	ix.unsafe = false
	ix.zm = nil
	ix.cr = nil
	ix.dict = nil
}

// indexFor returns (creating on demand) the index state of a name.
func (s *Store) indexFor(name string) *batIndex {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.indexes == nil {
		s.indexes = make(map[string]*batIndex)
	}
	ix := s.indexes[name]
	if ix == nil {
		ix = &batIndex{epoch: ^uint64(0)}
		s.indexes[name] = ix
	}
	return ix
}

// dropIndex forgets the cached index state of a dropped name.
func (s *Store) dropIndex(name string) {
	s.idxMu.Lock()
	delete(s.indexes, name)
	s.idxMu.Unlock()
}

// capture snapshots (BAT, epoch, index) for a named BAT. The store
// lock is released before any index work: index structures fan out on
// the shared pool, and a drain-helping Wait may execute foreign tasks
// that take store locks themselves.
func (s *Store) capture(name string) (*BAT, *batIndex, error) {
	s.mu.RLock()
	b, ok := s.bats[name]
	epoch := s.epochs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchBAT, name)
	}
	ix := s.indexFor(name)
	ix.mu.Lock()
	ix.syncEpoch(epoch)
	return b, ix, nil
}

// SelectPositions returns the ascending positions of the named BAT
// whose tail lies in [lo, hi], routed through the cost gate, plus a
// description of the access path taken. It is the primitive behind
// SelectRange/UselectRange and the COQL condition evaluator.
func (s *Store) SelectPositions(name string, lo, hi Value) ([]int, *AccessInfo, error) {
	return s.SelectPositionsCtx(context.Background(), name, lo, hi)
}

// SelectPositionsCtx is SelectPositions under a trace context: when
// ctx carries a span, the select records a "monet.select" child span
// holding the cost-gate decision (access attr), morsel child spans for
// parallel scans, and rows-scanned attribution into the trace's shared
// Resources.
func (s *Store) SelectPositionsCtx(ctx context.Context, name string, lo, hi Value) ([]int, *AccessInfo, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, nil, err
	}
	defer ix.mu.Unlock()
	cIdxSelects.Inc()
	sp := obs.SpanFromContext(ctx).StartChild("monet.select")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", name)
	idx, info := ix.selectLocked(b.tail, lo, hi, sp)
	sp.SetAttr("access", info.String())
	sp.Resources().AddScanned(scannedRows(info))
	sp.Finish()
	return idx, info, nil
}

// scannedRows estimates tuples examined by one indexed select: the
// whole column for a scan, only surviving morsels under zone-map
// pruning, and the matched rows for index answers (crack/dict touch
// piece boundaries, not tuples).
func scannedRows(info *AccessInfo) int {
	switch info.Path {
	case PathZoneMap:
		return (info.MorselsTotal - info.MorselsPruned) * MorselSize
	case PathCrack, PathDict:
		return info.Matched
	}
	return info.Rows
}

// SelectRange is the adaptive counterpart of BAT.Select over a stored
// BAT: same [head, tail] result, access path chosen by the cost gate.
func (s *Store) SelectRange(name string, lo, hi Value) (*BAT, *AccessInfo, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, nil, err
	}
	cIdxSelects.Inc()
	idx, info := ix.selectLocked(b.tail, lo, hi, nil)
	ix.mu.Unlock()
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}, info, nil
}

// UselectRange is the adaptive counterpart of BAT.Uselect: the
// qualifying heads over a void tail.
func (s *Store) UselectRange(name string, lo, hi Value) (*BAT, *AccessInfo, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, nil, err
	}
	cIdxSelects.Inc()
	idx, info := ix.selectLocked(b.tail, lo, hi, nil)
	ix.mu.Unlock()
	return &BAT{head: b.head.Gather(idx), tail: &voidColumn{n: len(idx)}}, info, nil
}

// PlanAccess reports the access path the next select with these
// bounds would take, without scanning or building anything — the
// side-effect-free probe EXPLAIN uses. When a zone map already exists
// the plan includes its prune counts for the given range.
func (s *Store) PlanAccess(name string, lo, hi Value) (*AccessInfo, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, err
	}
	defer ix.mu.Unlock()
	info := &AccessInfo{Rows: b.Len(), Path: ix.planLocked(b.tail, lo, hi)}
	if ix.zm != nil && !ix.unsafe {
		info.MorselsTotal = numMorsels(b.Len())
		info.MorselsPruned = info.MorselsTotal - len(ix.zm.prune(lo, hi))
	}
	if ix.cr != nil {
		info.CrackPieces = ix.cr.pieces()
	}
	if ix.dict != nil {
		info.DictSize = len(ix.dict.keys)
	}
	return info, nil
}

// Crack force-builds the cracker copy of a stored numeric column (the
// MIL crack() builtin) and returns its piece count.
func (s *Store) Crack(name string) (int, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return 0, err
	}
	defer ix.mu.Unlock()
	if ix.cr == nil {
		cr, ok := buildCracker(b.tail)
		if !ok {
			return 0, fmt.Errorf("monet: cannot crack %q: tail %v is not a crackable column", name, b.TailType())
		}
		if cr == nil {
			ix.unsafe = true
			return 0, fmt.Errorf("monet: cannot crack %q: column contains NaN", name)
		}
		ix.cr = cr
		cCrBuilds.Inc()
	}
	return ix.cr.pieces(), nil
}

// BuildZoneMap force-builds the zone map of a stored column (the MIL
// zonemap() builtin) and returns the number of summarized morsels.
func (s *Store) BuildZoneMap(name string) (int, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return 0, err
	}
	defer ix.mu.Unlock()
	if b.TailType() == Void {
		return 0, fmt.Errorf("monet: cannot zone-map %q: void tail", name)
	}
	if ix.zm == nil {
		ix.zm = buildZoneMap(b.tail)
		cZmBuilds.Inc()
		if ix.zm.unsafe {
			ix.unsafe = true
		}
	}
	return len(ix.zm.mins), nil
}

// IndexInfo returns a [str,str] BAT describing the adaptive index
// state of a name — the MIL indexinfo() builtin and the INDEXINFO
// protocol verb.
func (s *Store) IndexInfo(name string) (*BAT, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, err
	}
	defer ix.mu.Unlock()
	out := NewBAT(StrT, StrT)
	add := func(k, v string) { out.MustInsert(NewStr(k), NewStr(v)) }
	add("name", name)
	add("rows", fmt.Sprintf("%d", b.Len()))
	add("epoch", fmt.Sprintf("%d", ix.epoch))
	add("selects", fmt.Sprintf("%d", ix.selects))
	if ix.zm != nil {
		add("zonemap", fmt.Sprintf("%d morsels", len(ix.zm.mins)))
	} else {
		add("zonemap", "none")
	}
	if ix.cr != nil {
		add("crack", fmt.Sprintf("%d pieces (%d cracks)", ix.cr.pieces(), ix.cr.cracks()))
	} else {
		add("crack", "none")
	}
	if ix.dict != nil {
		add("dict", fmt.Sprintf("%d entries", len(ix.dict.keys)))
	} else {
		add("dict", "none")
	}
	add("unsafe", fmt.Sprintf("%v", ix.unsafe))
	return out, nil
}

// isNaNValue reports whether a bound poisons comparisons: the kernel
// Compare treats NaN as equal to everything, so a NaN bound makes the
// scan match every row — no index can reproduce that, so the gate
// falls back.
func isNaNValue(v Value) bool { return v.Typ == FloatT && math.IsNaN(v.F) }

// planLocked is the cost gate: given the column and the current index
// state, decide how the next select with these bounds would execute.
// It performs no builds and no scans.
func (ix *batIndex) planLocked(col Column, lo, hi Value) AccessPath {
	if col.Len() < ParallelThreshold || ix.unsafe {
		return PathScan
	}
	if lo.Typ != col.Type() || hi.Typ != col.Type() {
		// Mixed-type bounds compare by type tag first; only the scan
		// reproduces that ordering.
		return PathScan
	}
	switch col.Type() {
	case StrT:
		if ix.dict != nil || ix.selects >= 1 {
			return PathDict
		}
		return PathScan
	case IntT, OIDT, FloatT:
		if isNaNValue(lo) || isNaNValue(hi) {
			return PathScan
		}
		if ix.cr != nil || int64(ix.selects) >= crackAfter.Load() {
			return PathCrack
		}
		return PathZoneMap
	}
	return PathScan
}

// selectLocked executes one range select through the gate, building
// index structures as the policy allows, and returns the ascending
// qualifying positions — always exactly the positions the naive scan
// would return. A non-nil sp collects morsel child spans for the
// scanning paths.
func (ix *batIndex) selectLocked(col Column, lo, hi Value, sp *obs.Span) ([]int, *AccessInfo) {
	info := &AccessInfo{Path: PathScan, Rows: col.Len()}
	path := ix.planLocked(col, lo, hi)
	ix.selects++
	switch path {
	case PathDict:
		if ix.dict == nil {
			ix.dict = buildDict(col)
			cDictBuilds.Inc()
		}
		idx, hit := ix.dict.selectRange(lo.Str(), hi.Str())
		if hit {
			cDictHits.Inc()
		} else {
			cDictMisses.Inc()
		}
		info.Path = PathDict
		info.DictSize = len(ix.dict.keys)
		info.Matched = len(idx)
		return idx, info

	case PathCrack:
		if ix.cr == nil {
			cr, ok := buildCracker(col)
			if !ok || cr == nil {
				// Uncrackable now (NaN appeared): stay on the scan.
				ix.unsafe = cr == nil && ok
				break
			}
			ix.cr = cr
			cCrBuilds.Inc()
		}
		before := ix.cr.cracks()
		idx := ix.cr.selectRange(lo, hi)
		cCrCracks.Add(int64(ix.cr.cracks() - before))
		hCrPieces.ObserveNs(int64(ix.cr.pieces()))
		info.Path = PathCrack
		info.CrackPieces = ix.cr.pieces()
		info.Matched = len(idx)
		return idx, info

	case PathZoneMap:
		if ix.zm == nil {
			ix.zm = buildZoneMap(col)
			cZmBuilds.Inc()
			if ix.zm.unsafe {
				ix.unsafe = true
				break
			}
		}
		surviving := ix.zm.prune(lo, hi)
		info.MorselsTotal = numMorsels(col.Len())
		info.MorselsPruned = info.MorselsTotal - len(surviving)
		cZmScanned.Add(int64(len(surviving)))
		cZmPruned.Add(int64(info.MorselsPruned))
		if info.MorselsPruned > 0 {
			info.Path = PathZoneMap
		}
		idx := scanMorselSubsetSpan(col, surviving, lo, hi, sp)
		info.Matched = len(idx)
		return idx, info
	}
	idx := colSelectIdxSpan(col, lo, hi, sp)
	info.Matched = len(idx)
	return idx, info
}

// scanMorselSubset scans only the given morsels (ascending indices)
// for values in [lo, hi]; concatenating per-morsel matches in morsel
// order keeps the result identical to the full serial scan restricted
// to those morsels. Wide columns fan the surviving morsels out on the
// shared pool.
func scanMorselSubset(col Column, morsels []int, lo, hi Value) []int {
	return scanMorselSubsetSpan(col, morsels, lo, hi, nil)
}

// scanMorselSubsetSpan is scanMorselSubset under an optional trace
// span: surviving morsels record queue-wait/run child spans (capped at
// maxMorselSpans) and accumulate into the trace's Resources, mirroring
// runMorselsSpan for the zone-map path's sparse fan-out.
func scanMorselSubsetSpan(col Column, morsels []int, lo, hi Value, sp *obs.Span) []int {
	n := col.Len()
	res := sp.Resources()
	parts := make([][]int, len(morsels))
	scanOne := func(k int) {
		start := morsels[k] * MorselSize
		end := start + MorselSize
		if end > n {
			end = n
		}
		var idx []int
		for i := start; i < end; i++ {
			t := col.Get(i)
			if Compare(t, lo) >= 0 && Compare(t, hi) <= 0 {
				idx = append(idx, i)
			}
		}
		parts[k] = idx
	}
	if p, ok := poolFor(n); ok && len(morsels) > 1 {
		b := p.Batch()
		for k := range morsels {
			k := k
			if sp == nil {
				b.Submit(func() { scanOne(k) })
				continue
			}
			var msp *obs.Span
			if k < maxMorselSpans {
				msp = sp.StartChild("monet.morsel")
				msp.SetAttr("morsel", fmt.Sprintf("%d", morsels[k]))
			}
			submitted := time.Now()
			b.Submit(func() {
				t0 := time.Now()
				scanOne(k)
				run := time.Since(t0)
				wait := t0.Sub(submitted)
				if wait < 0 {
					wait = 0
				}
				res.AddMorsel(wait, run)
				if msp != nil {
					msp.SetAttr("queue_wait", obs.FormatDuration(wait))
					msp.SetAttr("run", obs.FormatDuration(run))
					msp.Finish()
				}
			})
		}
		b.Wait()
	} else {
		for k := range morsels {
			scanOne(k)
		}
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	idx := make([]int, 0, total)
	for _, part := range parts {
		idx = append(idx, part...)
	}
	return idx
}
