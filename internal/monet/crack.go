package monet

import (
	"math"
	"sort"
)

// Database cracking: a cracker copy of a numeric column that is
// incrementally range-partitioned as a side effect of each select.
// Every query's bounds become partition boundaries, so the copy
// converges toward sorted exactly along the ranges the workload
// cares about, and repeated selects turn into binary search over the
// boundaries plus a narrow copy — no full scans.
//
// The cracker maintains the invariant that for every boundary k, all
// values left of bpos[k] are strictly less than bvals[k] and all
// values from bpos[k] on are >= bvals[k]. An inclusive select
// [lo, hi] therefore cracks at lo and at the successor of hi and
// returns the positions between the two boundaries.

// cracker is the type-erased face of numCracker the index keeps.
type cracker interface {
	// selectRange returns the ascending original positions whose
	// value lies in [lo, hi]. Callers must not mutate the returned
	// slice: repeated identical queries over unchanged pieces share a
	// cached result.
	selectRange(lo, hi Value) []int
	// pieces is the current partition count.
	pieces() int
	// cracks is the number of partition steps performed so far.
	cracks() int
}

// buildCracker copies a column into a cracker. The second result is
// false when the column type cannot be cracked; a (nil, true) return
// means the column holds NaN, which no range partition can represent
// under the kernel's NaN-equals-everything Compare.
func buildCracker(col Column) (cracker, bool) {
	switch c := col.(type) {
	case *intColumn:
		vals := make([]int64, len(c.v))
		copy(vals, c.v)
		return newNumCracker(vals, succInt64), true
	case *oidColumn:
		vals := make([]int64, len(c.v))
		for i, o := range c.v {
			vals[i] = int64(o)
		}
		return newNumCracker(vals, succInt64), true
	case *floatColumn:
		vals := make([]float64, len(c.v))
		for i, f := range c.v {
			if math.IsNaN(f) {
				return nil, true
			}
			vals[i] = f
		}
		return newNumCracker(vals, succFloat64), true
	}
	return nil, false
}

// succInt64 returns the smallest value greater than v (ok=false at
// the top of the domain, where "<= v" means "everything").
func succInt64(v int64) (int64, bool) {
	if v == math.MaxInt64 {
		return 0, false
	}
	return v + 1, true
}

// succFloat64 is the float successor; +Inf has none.
func succFloat64(v float64) (float64, bool) {
	if math.IsInf(v, 1) {
		return 0, false
	}
	return math.Nextafter(v, math.Inf(1)), true
}

// numCracker is the cracker for one unboxed numeric element type.
type numCracker[T int64 | float64] struct {
	vals []T   // the cracker copy, permuted in place
	pos  []int // original position of vals[i]
	// Piece boundaries, ascending: piece k holds positions
	// [bpos[k-1], bpos[k]) with values in [bvals[k-1], bvals[k]).
	bvals []T
	bpos  []int
	succ  func(T) (T, bool)
	ncr   int // partition steps performed
	ver   int // bumped on every partition step
	// One-entry result cache: the repeated-query fast path. Valid
	// while the piece layout (ver) and the answering boundary pair
	// are unchanged.
	lastVer, lastP1, lastP2 int
	lastIdx                 []int
}

func newNumCracker[T int64 | float64](vals []T, succ func(T) (T, bool)) *numCracker[T] {
	pos := make([]int, len(vals))
	for i := range pos {
		pos[i] = i
	}
	return &numCracker[T]{vals: vals, pos: pos, succ: succ, lastVer: -1}
}

// crackAt returns the boundary position of v: every value left of it
// is < v, every value from it on is >= v. Unknown boundaries are
// created by partitioning the one piece that straddles v.
func (c *numCracker[T]) crackAt(v T) int {
	k := sort.Search(len(c.bvals), func(i int) bool { return c.bvals[i] >= v })
	if k < len(c.bvals) && c.bvals[k] == v {
		return c.bpos[k]
	}
	lo := 0
	if k > 0 {
		lo = c.bpos[k-1]
	}
	hi := len(c.vals)
	if k < len(c.bpos) {
		hi = c.bpos[k]
	}
	// Two-pointer partition of the straddling piece: < v left, >= v
	// right. Positions move with their values, so pos keeps mapping
	// cracker slots to original rows.
	i, j := lo, hi-1
	for i <= j {
		if c.vals[i] < v {
			i++
			continue
		}
		if c.vals[j] >= v {
			j--
			continue
		}
		c.vals[i], c.vals[j] = c.vals[j], c.vals[i]
		c.pos[i], c.pos[j] = c.pos[j], c.pos[i]
		i++
		j--
	}
	c.bvals = append(c.bvals, v)
	copy(c.bvals[k+1:], c.bvals[k:len(c.bvals)-1])
	c.bvals[k] = v
	c.bpos = append(c.bpos, i)
	copy(c.bpos[k+1:], c.bpos[k:len(c.bpos)-1])
	c.bpos[k] = i
	c.ncr++
	c.ver++
	return i
}

// selectVals answers [lo, hi] over the unboxed domain.
func (c *numCracker[T]) selectVals(lo, hi T) []int {
	p1 := c.crackAt(lo)
	p2 := len(c.vals)
	if s, ok := c.succ(hi); ok {
		p2 = c.crackAt(s)
	}
	if p2 < p1 {
		p2 = p1 // empty range (hi < lo)
	}
	if c.lastIdx != nil && c.lastVer == c.ver && c.lastP1 == p1 && c.lastP2 == p2 {
		return c.lastIdx
	}
	out := make([]int, p2-p1)
	copy(out, c.pos[p1:p2])
	sort.Ints(out)
	c.lastVer, c.lastP1, c.lastP2, c.lastIdx = c.ver, p1, p2, out
	return out
}

func (c *numCracker[T]) pieces() int { return len(c.bvals) + 1 }
func (c *numCracker[T]) cracks() int { return c.ncr }

func (c *numCracker[T]) selectRange(lo, hi Value) []int {
	switch cc := any(c).(type) {
	case *numCracker[int64]:
		return cc.selectVals(lo.Int(), hi.Int())
	case *numCracker[float64]:
		return cc.selectVals(lo.Float(), hi.Float())
	}
	return nil
}
