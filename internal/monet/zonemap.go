package monet

import "math"

// zoneMap summarizes a column as per-morsel [min, max] pairs, aligned
// to the MorselSize grid the parallel operators already scan in. A
// range select consults it to skip every morsel whose summary cannot
// intersect the predicate; the surviving morsels feed the same
// morsel-ordered scan, so pruning never changes the result.
type zoneMap struct {
	mins, maxs []Value
	n          int // rows summarized
	// unsafe is set when a NaN was seen: NaN compares equal to
	// everything under the kernel Compare, so min/max summaries are
	// meaningless and the owner must fall back to full scans.
	unsafe bool
}

// buildZoneMap summarizes col in one pass, morsel-parallel when the
// column clears the pool threshold. Per-morsel summaries are
// independent, so the parallel build is deterministic.
func buildZoneMap(col Column) *zoneMap {
	n := col.Len()
	nm := numMorsels(n)
	z := &zoneMap{mins: make([]Value, nm), maxs: make([]Value, nm), n: n}
	nan := make([]bool, nm)
	fill := func(m, lo, hi int) {
		mn, mx := col.Get(lo), col.Get(lo)
		for i := lo; i < hi; i++ {
			v := col.Get(i)
			if v.Typ == FloatT && math.IsNaN(v.F) {
				nan[m] = true
				return
			}
			if Compare(v, mn) < 0 {
				mn = v
			}
			if Compare(v, mx) > 0 {
				mx = v
			}
		}
		z.mins[m], z.maxs[m] = mn, mx
	}
	if p, ok := poolFor(n); ok {
		runMorsels(p, n, nil, nil, fill)
	} else {
		for m := 0; m < nm; m++ {
			hi := (m + 1) * MorselSize
			if hi > n {
				hi = n
			}
			fill(m, m*MorselSize, hi)
		}
	}
	for _, u := range nan {
		if u {
			z.unsafe = true
			break
		}
	}
	return z
}

// prune returns the ascending indices of the morsels whose [min, max]
// summary intersects [lo, hi] — the only morsels a range select needs
// to touch.
func (z *zoneMap) prune(lo, hi Value) []int {
	surviving := make([]int, 0, len(z.mins))
	for m := range z.mins {
		if Compare(z.maxs[m], lo) < 0 || Compare(z.mins[m], hi) > 0 {
			continue
		}
		surviving = append(surviving, m)
	}
	return surviving
}
