package monet

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the shared pool resized to width, restoring
// the previous width afterwards.
func withWorkers(t *testing.T, width int, fn func()) {
	t.Helper()
	prev := SetDefaultPoolWorkers(width)
	defer SetDefaultPoolWorkers(prev)
	fn()
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	b := p.Batch()
	for i := 0; i < 1000; i++ {
		b.Submit(func() { n.Add(1) })
	}
	b.Wait()
	if n.Load() != 1000 {
		t.Fatalf("ran %d tasks, want 1000", n.Load())
	}
}

func TestPoolNestedBatches(t *testing.T) {
	// A task that itself fans out onto the same pool must not deadlock,
	// even when the fan-out far exceeds the worker count.
	p := NewPool(2)
	defer p.Close()
	var n atomic.Int64
	outer := p.Batch()
	for i := 0; i < 8; i++ {
		outer.Submit(func() {
			inner := p.Batch()
			for j := 0; j < 50; j++ {
				inner.Submit(func() { n.Add(1) })
			}
			inner.Wait()
		})
	}
	outer.Wait()
	if n.Load() != 400 {
		t.Fatalf("ran %d nested tasks, want 400", n.Load())
	}
}

func TestPoolClosedRunsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	var n atomic.Int64
	b := p.Batch()
	b.Submit(func() { n.Add(1) })
	b.Wait()
	if n.Load() != 1 {
		t.Fatal("closed pool dropped a task")
	}
}

func TestSetDefaultPoolWorkers(t *testing.T) {
	prev := SetDefaultPoolWorkers(3)
	defer SetDefaultPoolWorkers(prev)
	if got := DefaultPool().Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	if p := SetDefaultPoolWorkers(5); p != 3 {
		t.Fatalf("previous width = %d, want 3", p)
	}
	if p := SetDefaultPoolWorkers(1 << 20); p != 5 {
		t.Fatalf("previous width = %d, want 5", p)
	}
	if got := DefaultPool().Workers(); got != maxPoolWorkers {
		t.Fatalf("width clamped to %d, want %d", got, maxPoolWorkers)
	}
}

// parallelTestBAT is large enough to clear ParallelThreshold with a
// row count that is deliberately not a multiple of MorselSize.
func parallelTestBAT(kind string) *BAT {
	n := ParallelThreshold + MorselSize/2 + 7
	switch kind {
	case "int":
		b := NewBATCap(Void, IntT, n)
		for i := 0; i < n; i++ {
			b.MustInsert(VoidValue(), NewInt(int64((i*2654435761)%1000)))
		}
		return b
	case "str":
		b := NewBATCap(Void, StrT, n)
		for i := 0; i < n; i++ {
			b.MustInsert(VoidValue(), NewStr(fmt.Sprintf("k%d", i%97)))
		}
		return b
	case "float":
		b := NewBATCap(Void, FloatT, n)
		for i := 0; i < n; i++ {
			b.MustInsert(VoidValue(), NewFloat(float64(i%513)))
		}
		return b
	}
	panic("unknown kind " + kind)
}

func requireBATsEqual(t *testing.T, got, want *BAT, op string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d, want %d", op, got.Len(), want.Len())
	}
	if got.HeadType() != want.HeadType() || got.TailType() != want.TailType() {
		t.Fatalf("%s: type [%v,%v], want [%v,%v]", op,
			got.HeadType(), got.TailType(), want.HeadType(), want.TailType())
	}
	for i := 0; i < got.Len(); i++ {
		if !Equal(got.Head(i), want.Head(i)) || !Equal(got.Tail(i), want.Tail(i)) {
			t.Fatalf("%s: row %d = [%v,%v], want [%v,%v]", op, i,
				got.Head(i), got.Tail(i), want.Head(i), want.Tail(i))
		}
	}
}

func TestParallelSelectMatchesSerial(t *testing.T) {
	for _, kind := range []string{"int", "str", "float"} {
		b := parallelTestBAT(kind)
		var lo, hi Value
		switch kind {
		case "int":
			lo, hi = NewInt(100), NewInt(300)
		case "str":
			lo, hi = NewStr("k10"), NewStr("k50")
		case "float":
			lo, hi = NewFloat(5), NewFloat(400)
		}
		var serial, parallel, uSerial, uParallel *BAT
		withWorkers(t, 1, func() { serial = b.Select(lo, hi); uSerial = b.Uselect(lo, hi) })
		withWorkers(t, 4, func() { parallel = b.Select(lo, hi); uParallel = b.Uselect(lo, hi) })
		requireBATsEqual(t, parallel, serial, kind+" select")
		requireBATsEqual(t, uParallel, uSerial, kind+" uselect")
	}
}

func TestParallelJoinMatchesSerial(t *testing.T) {
	for _, kind := range []string{"int", "str", "float"} {
		probe := parallelTestBAT(kind)
		// Build side keyed by a distinct subset of the probe's tails.
		build := NewBAT(probe.TailType(), IntT)
		seen := map[string]bool{}
		for i := 0; i < probe.Len(); i += 3 {
			v := probe.Tail(i)
			if seen[v.String()] {
				continue
			}
			seen[v.String()] = true
			build.MustInsert(v, NewInt(int64(i)))
		}
		var serial, parallel *BAT
		var errS, errP error
		withWorkers(t, 1, func() { serial, errS = probe.Join(build) })
		withWorkers(t, 4, func() { parallel, errP = probe.Join(build) })
		if errS != nil || errP != nil {
			t.Fatalf("%s join: %v / %v", kind, errS, errP)
		}
		requireBATsEqual(t, parallel, serial, kind+" join")
	}
}

func TestParallelJoinDuplicateKeys(t *testing.T) {
	// Duplicate build keys: every probe row matches several positions
	// and the pair order must still equal the serial nested loop.
	probe := parallelTestBAT("int")
	build := NewBAT(IntT, StrT)
	for r := 0; r < 3; r++ {
		for k := 0; k < 1000; k += 5 {
			build.MustInsert(NewInt(int64(k)), NewStr(fmt.Sprintf("v%d-%d", k, r)))
		}
	}
	var serial, parallel *BAT
	var errS, errP error
	withWorkers(t, 1, func() { serial, errS = probe.Join(build) })
	withWorkers(t, 4, func() { parallel, errP = probe.Join(build) })
	if errS != nil || errP != nil {
		t.Fatalf("join: %v / %v", errS, errP)
	}
	requireBATsEqual(t, parallel, serial, "dup-key join")
}

func TestParallelSemijoinKDiffMatchSerial(t *testing.T) {
	b := parallelTestBAT("int").Mark(0) // [oid-head, oid-tail], heads dense oids
	other := NewBAT(OIDT, Void)
	for i := 0; i < b.Len(); i += 2 {
		other.MustInsert(NewOID(OID(i)), VoidValue())
	}
	var semiS, semiP, diffS, diffP *BAT
	withWorkers(t, 1, func() {
		semiS, _ = b.Semijoin(other)
		diffS, _ = b.KDiff(other)
	})
	withWorkers(t, 4, func() {
		semiP, _ = b.Semijoin(other)
		diffP, _ = b.KDiff(other)
	})
	requireBATsEqual(t, semiP, semiS, "semijoin")
	requireBATsEqual(t, diffP, diffS, "kdiff")
}

func TestParallelAggregatesMatchSerial(t *testing.T) {
	b := parallelTestBAT("int")
	type agg struct {
		sum      float64
		max, min Value
		argmax   Value
		argmin   Value
	}
	measure := func() agg {
		var a agg
		a.sum, _ = b.Sum()
		a.max, _ = b.Max()
		a.min, _ = b.Min()
		a.argmax, _ = b.ArgMax()
		a.argmin, _ = b.ArgMin()
		return a
	}
	var serial, parallel agg
	withWorkers(t, 1, func() { serial = measure() })
	withWorkers(t, 4, func() { parallel = measure() })
	if parallel.sum != serial.sum {
		t.Fatalf("sum = %v, want %v", parallel.sum, serial.sum)
	}
	for _, pair := range [][2]Value{
		{parallel.max, serial.max}, {parallel.min, serial.min},
		{parallel.argmax, serial.argmax}, {parallel.argmin, serial.argmin},
	} {
		if !Equal(pair[0], pair[1]) {
			t.Fatalf("aggregate %v, want %v", pair[0], pair[1])
		}
	}
}

// TestGroupedAggregationDeterministic is the ISSUE's determinism
// check: parallel grouped aggregation must produce byte-identical
// results to the serial path across pool widths 1..8. Tail values are
// integer-valued, so even the float sums are exact and order-free.
func TestGroupedAggregationDeterministic(t *testing.T) {
	heads := parallelTestBAT("str")
	b := NewBAT(StrT, IntT)
	for i := 0; i < heads.Len(); i++ {
		b.MustInsert(heads.Tail(i), NewInt(int64(i%251)))
	}
	var want string
	withWorkers(t, 1, func() {
		sum, err := b.GroupSum()
		if err != nil {
			t.Fatal(err)
		}
		cnt, _ := b.GroupCount()
		mx, _ := b.GroupMax()
		mn, _ := b.GroupMin()
		avg, _ := b.GroupAvg()
		want = sum.Dump(0) + cnt.Dump(0) + mx.Dump(0) + mn.Dump(0) + avg.Dump(0)
	})
	for width := 1; width <= 8; width++ {
		var got string
		withWorkers(t, width, func() {
			sum, err := b.GroupSum()
			if err != nil {
				t.Fatal(err)
			}
			cnt, _ := b.GroupCount()
			mx, _ := b.GroupMax()
			mn, _ := b.GroupMin()
			avg, _ := b.GroupAvg()
			got = sum.Dump(0) + cnt.Dump(0) + mx.Dump(0) + mn.Dump(0) + avg.Dump(0)
		})
		if got != want {
			t.Fatalf("-threads %d: grouped aggregation diverged from serial\n got: %.200s\nwant: %.200s",
				width, got, want)
		}
	}
}

func TestParallelSumLargeFloatExact(t *testing.T) {
	// Integer-valued floats sum exactly, so parallel == serial bitwise.
	b := parallelTestBAT("float")
	var serial, parallel float64
	withWorkers(t, 1, func() { serial, _ = b.Sum() })
	withWorkers(t, 7, func() { parallel, _ = b.Sum() })
	if serial != parallel {
		t.Fatalf("parallel sum %v != serial %v", parallel, serial)
	}
}
