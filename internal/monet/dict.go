package monet

import "sort"

// Dictionary encoding for string columns: the distinct tail values,
// sorted, plus one small integer code per row. Equality and range
// selects binary-search the dictionary once and then compare int32
// codes instead of strings, and the dictionary itself answers
// distinct counts — the shot-class / event-type / driver-name shape
// of the paper's workload, where a million rows hold a handful of
// distinct labels.
type strDict struct {
	keys  []string // sorted distinct values
	codes []int32  // per-row code: index into keys
}

// buildDict encodes a str column. Codes preserve order: the code
// comparison code_i < code_j agrees with keys[code_i] < keys[code_j],
// which is what lets range predicates run over codes.
func buildDict(col Column) *strDict {
	sc, ok := col.(*strColumn)
	if !ok {
		return nil
	}
	keys := append([]string(nil), sc.v...)
	sort.Strings(keys)
	w := 0
	for i, k := range keys {
		if i == 0 || k != keys[w-1] {
			keys[w] = k
			w++
		}
	}
	keys = keys[:w]
	codes := make([]int32, len(sc.v))
	for i, s := range sc.v {
		codes[i] = int32(sort.SearchStrings(keys, s))
	}
	return &strDict{keys: keys, codes: codes}
}

// selectRange returns the ascending positions whose value lies in
// [lo, hi], comparing codes only; hit reports whether any dictionary
// entry fell in the range (false = guaranteed-empty result without
// touching a single row). Large columns scan their codes
// morsel-parallel on the shared pool.
func (d *strDict) selectRange(lo, hi string) (idx []int, hit bool) {
	cl := sort.SearchStrings(d.keys, lo)
	ch := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] > hi })
	if cl >= ch {
		return nil, false
	}
	l, h := int32(cl), int32(ch)
	if p, ok := poolFor(len(d.codes)); ok {
		return parFilterIdx(p, len(d.codes), hPoolSelectLat, hPoolSelectSpd, func(i int) bool {
			return d.codes[i] >= l && d.codes[i] < h
		}), true
	}
	idx = make([]int, 0, 16)
	for i, c := range d.codes {
		if c >= l && c < h {
			idx = append(idx, i)
		}
	}
	return idx, true
}
