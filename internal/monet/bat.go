package monet

import (
	"errors"
	"fmt"
	"sort"

	"cobra/internal/obs"
)

// Per-operator invocation counters for the kernel's bulk operators.
// Counters are cached package-side so the hot paths pay one atomic add
// per operator call, never a registry lookup.
var (
	opSelect   = obs.C("monet.bat.select")
	opUselect  = obs.C("monet.bat.uselect")
	opFilter   = obs.C("monet.bat.filter")
	opJoin     = obs.C("monet.bat.join")
	opSemijoin = obs.C("monet.bat.semijoin")
	opKDiff    = obs.C("monet.bat.kdiff")
	opKUnion   = obs.C("monet.bat.kunion")
	opSort     = obs.C("monet.bat.sort")
	opMark     = obs.C("monet.bat.mark")
)

// BAT is a Binary Association Table: a two-column table of
// (head, tail) pairs, the sole bulk data structure of the kernel.
// Decomposed storage represents an n-attribute relation as n BATs
// sharing head OIDs.
type BAT struct {
	head Column
	tail Column
}

// ErrTypeMismatch is returned when an operation receives values or
// operand BATs of incompatible types.
var ErrTypeMismatch = errors.New("monet: type mismatch")

// NewBAT returns an empty BAT with the given head and tail types.
func NewBAT(headType, tailType Type) *BAT {
	return &BAT{head: NewColumn(headType), tail: NewColumn(tailType)}
}

// NewBATCap returns an empty BAT with capacity for n entries.
func NewBATCap(headType, tailType Type, n int) *BAT {
	return &BAT{head: NewColumnCap(headType, n), tail: NewColumnCap(tailType, n)}
}

// HeadType returns the type of the head column.
func (b *BAT) HeadType() Type { return b.head.Type() }

// TailType returns the type of the tail column.
func (b *BAT) TailType() Type { return b.tail.Type() }

// Len returns the number of associations (BUNs) in the BAT.
func (b *BAT) Len() int { return b.head.Len() }

// Insert appends one (head, tail) association.
func (b *BAT) Insert(h, t Value) error {
	if b.head.Type() != Void && h.Typ != b.head.Type() {
		return fmt.Errorf("%w: head %v into [%v,%v]", ErrTypeMismatch, h.Typ, b.head.Type(), b.tail.Type())
	}
	if b.tail.Type() != Void && t.Typ != b.tail.Type() {
		return fmt.Errorf("%w: tail %v into [%v,%v]", ErrTypeMismatch, t.Typ, b.head.Type(), b.tail.Type())
	}
	b.head.Append(h)
	b.tail.Append(t)
	return nil
}

// MustInsert is Insert that panics on type mismatch; used by internal
// operators that construct BATs of known types.
func (b *BAT) MustInsert(h, t Value) {
	if err := b.Insert(h, t); err != nil {
		panic(err)
	}
}

// Head returns the i-th head value.
func (b *BAT) Head(i int) Value { return b.head.Get(i) }

// Tail returns the i-th tail value.
func (b *BAT) Tail(i int) Value { return b.tail.Get(i) }

// Reverse returns a view of the BAT with head and tail swapped. It is
// O(1): the result shares columns with the receiver.
func (b *BAT) Reverse() *BAT { return &BAT{head: b.tail, tail: b.head} }

// Mirror returns a BAT pairing each head value with itself.
func (b *BAT) Mirror() *BAT { return &BAT{head: b.head, tail: b.head} }

// materialType maps the virtual void type to the concrete OID type:
// output columns built by value insertion must not lose void-head
// identities.
func materialType(t Type) Type {
	if t == Void {
		return OIDT
	}
	return t
}

// headCompatible reports whether two head types can be compared
// value-wise (void heads materialize as OIDs).
func headCompatible(a, b Type) bool {
	return materialType(a) == materialType(b)
}

// Mark returns a BAT pairing each head value with a fresh dense OID
// sequence starting at base.
func (b *BAT) Mark(base OID) *BAT {
	opMark.Inc()
	out := NewBATCap(materialType(b.head.Type()), OIDT, b.Len())
	for i := 0; i < b.Len(); i++ {
		out.MustInsert(b.head.Get(i), NewOID(base+OID(i)))
	}
	return out
}

// Clone returns a deep copy.
func (b *BAT) Clone() *BAT { return &BAT{head: b.head.Clone(), tail: b.tail.Clone()} }

// Slice returns a new BAT holding rows [lo, hi).
func (b *BAT) Slice(lo, hi int) *BAT {
	idx := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		idx = append(idx, i)
	}
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
}

// Select returns the associations whose tail lies in [lo, hi]
// (inclusive). Pass equal lo and hi for point selection. Large BATs
// are scanned morsel-parallel on the shared pool; the result is
// identical to the serial scan for any pool width.
func (b *BAT) Select(lo, hi Value) *BAT {
	opSelect.Inc()
	idx := b.selectIdx(lo, hi)
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
}

// selectIdx returns the ascending positions whose tail lies in
// [lo, hi], taking the morsel-parallel path when the BAT is large
// enough and the pool is wider than one worker.
func (b *BAT) selectIdx(lo, hi Value) []int {
	return colSelectIdx(b.tail, lo, hi)
}

// colSelectIdx is the full-scan range select over one column: the
// ascending positions whose value lies in [lo, hi], morsel-parallel
// when the column is large enough. The adaptive access paths
// (accesspath.go) fall back to it whenever an index cannot answer a
// predicate exactly.
func colSelectIdx(c Column, lo, hi Value) []int {
	return colSelectIdxSpan(c, lo, hi, nil)
}

// colSelectIdxSpan is colSelectIdx under an optional trace span: the
// parallel path records per-morsel queue-wait/run spans under sp.
func colSelectIdxSpan(c Column, lo, hi Value, sp *obs.Span) []int {
	if p, ok := poolFor(c.Len()); ok {
		return parFilterIdxSpan(p, c.Len(), hPoolSelectLat, hPoolSelectSpd, sp, func(i int) bool {
			t := c.Get(i)
			return Compare(t, lo) >= 0 && Compare(t, hi) <= 0
		})
	}
	idx := make([]int, 0, 16)
	for i := 0; i < c.Len(); i++ {
		t := c.Get(i)
		if Compare(t, lo) >= 0 && Compare(t, hi) <= 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// SelectEq returns the associations whose tail equals v.
func (b *BAT) SelectEq(v Value) *BAT { return b.Select(v, v) }

// Uselect returns a BAT [head, void] of the heads whose tail lies in
// [lo, hi]; the unary form of Select. Like Select it goes
// morsel-parallel on large inputs.
func (b *BAT) Uselect(lo, hi Value) *BAT {
	opUselect.Inc()
	idx := b.selectIdx(lo, hi)
	return &BAT{head: b.head.Gather(idx), tail: &voidColumn{n: len(idx)}}
}

// Filter returns the associations for which pred returns true; the
// kernel hook for arbitrary selections.
func (b *BAT) Filter(pred func(h, t Value) bool) *BAT {
	opFilter.Inc()
	idx := make([]int, 0, 16)
	for i := 0; i < b.Len(); i++ {
		if pred(b.head.Get(i), b.tail.Get(i)) {
			idx = append(idx, i)
		}
	}
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
}

// Join returns the equi-join of b with other over b.tail == other.head,
// producing [b.head, other.tail]. A hash table is built over
// other.head; large operands build the table sharded and probe it
// morsel-parallel, producing the same pair order as the serial
// nested-probe loop.
func (b *BAT) Join(other *BAT) (*BAT, error) {
	opJoin.Inc()
	if !headCompatible(b.tail.Type(), other.head.Type()) {
		return nil, fmt.Errorf("%w: join tail %v with head %v", ErrTypeMismatch, b.tail.Type(), other.head.Type())
	}
	if p, ok := poolFor(b.Len()); ok {
		return b.joinPar(p, other), nil
	}
	out := NewBAT(materialType(b.head.Type()), materialType(other.tail.Type()))
	// Build hash on other.head → positions.
	ht := buildHash(other.head)
	for i := 0; i < b.Len(); i++ {
		t := b.tail.Get(i)
		for _, j := range ht.lookup(t) {
			out.MustInsert(b.head.Get(i), other.tail.Get(j))
		}
	}
	return out, nil
}

// joinPar is the morsel-parallel equi-join: each probe morsel emits
// its (left position, right position) match pairs, the pairs are
// concatenated in morsel order, and two gathers materialize the output
// columns — exactly the rows the serial probe loop inserts.
func (b *BAT) joinPar(p *Pool, other *BAT) *BAT {
	ht := buildHashIndex(other.head)
	nm := numMorsels(b.Len())
	lParts := make([][]int, nm)
	rParts := make([][]int, nm)
	runMorsels(p, b.Len(), hPoolJoinLat, hPoolJoinSpd, func(m, lo, hi int) {
		// Probe into arena scratch sized for the common
		// at-most-one-match case; higher join multiplicity appends past
		// the arena buffer onto the heap but stays morsel-bounded. The
		// surviving pairs are copied out exact-size before the arena is
		// returned.
		a := GetArena()
		ls := a.Ints(hi - lo)[:0]
		rs := a.Ints(hi - lo)[:0]
		for i := lo; i < hi; i++ {
			t := b.tail.Get(i)
			for _, j := range ht.lookup(t) {
				ls = append(ls, i) //cobravet:allow allochot // appends into arena scratch presized to the morsel; join fan-out past it migrates off-arena once, not per row
				rs = append(rs, j) //cobravet:allow allochot // same arena scratch as ls
			}
		}
		lParts[m] = append([]int(nil), ls...)
		rParts[m] = append([]int(nil), rs...)
		PutArena(a)
	})
	total := 0
	for _, part := range lParts {
		total += len(part)
	}
	lIdx := make([]int, 0, total)
	rIdx := make([]int, 0, total)
	for m := range lParts {
		lIdx = append(lIdx, lParts[m]...)
		rIdx = append(rIdx, rParts[m]...)
	}
	return &BAT{head: b.head.Gather(lIdx), tail: other.tail.Gather(rIdx)}
}

// Semijoin returns the associations of b whose head appears as a head
// in other.
func (b *BAT) Semijoin(other *BAT) (*BAT, error) {
	opSemijoin.Inc()
	if !headCompatible(b.head.Type(), other.head.Type()) {
		return nil, fmt.Errorf("%w: semijoin head %v with head %v", ErrTypeMismatch, b.head.Type(), other.head.Type())
	}
	if p, ok := poolFor(b.Len()); ok {
		ht := buildHashIndex(other.head)
		idx := parFilterIdx(p, b.Len(), hPoolJoinLat, hPoolJoinSpd, func(i int) bool {
			return len(ht.lookup(b.head.Get(i))) > 0
		})
		return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}, nil
	}
	ht := buildHash(other.head)
	idx := make([]int, 0, 16)
	for i := 0; i < b.Len(); i++ {
		if len(ht.lookup(b.head.Get(i))) > 0 {
			idx = append(idx, i)
		}
	}
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}, nil
}

// KDiff returns the associations of b whose head does not appear as a
// head in other.
func (b *BAT) KDiff(other *BAT) (*BAT, error) {
	opKDiff.Inc()
	if !headCompatible(b.head.Type(), other.head.Type()) {
		return nil, fmt.Errorf("%w: kdiff head %v with head %v", ErrTypeMismatch, b.head.Type(), other.head.Type())
	}
	if p, ok := poolFor(b.Len()); ok {
		ht := buildHashIndex(other.head)
		idx := parFilterIdx(p, b.Len(), hPoolJoinLat, hPoolJoinSpd, func(i int) bool {
			return len(ht.lookup(b.head.Get(i))) == 0
		})
		return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}, nil
	}
	ht := buildHash(other.head)
	idx := make([]int, 0, 16)
	for i := 0; i < b.Len(); i++ {
		if len(ht.lookup(b.head.Get(i))) == 0 {
			idx = append(idx, i)
		}
	}
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}, nil
}

// KUnion returns b with the associations of other appended. Types must
// match exactly.
func (b *BAT) KUnion(other *BAT) (*BAT, error) {
	opKUnion.Inc()
	if b.head.Type() != other.head.Type() || b.tail.Type() != other.tail.Type() {
		return nil, fmt.Errorf("%w: kunion [%v,%v] with [%v,%v]", ErrTypeMismatch,
			b.head.Type(), b.tail.Type(), other.head.Type(), other.tail.Type())
	}
	out := b.Clone()
	for i := 0; i < other.Len(); i++ {
		out.MustInsert(other.Head(i), other.Tail(i))
	}
	return out, nil
}

// Find returns the tail associated with the first occurrence of head h,
// and whether any was found — the kernel's point lookup (MIL find).
func (b *BAT) Find(h Value) (Value, bool) {
	for i := 0; i < b.Len(); i++ {
		if Equal(b.head.Get(i), h) {
			return b.tail.Get(i), true
		}
	}
	return Value{}, false
}

// Exists reports whether head h occurs in the BAT.
func (b *BAT) Exists(h Value) bool {
	_, ok := b.Find(h)
	return ok
}

// SortTail returns a copy of the BAT ordered by ascending tail.
func (b *BAT) SortTail() *BAT {
	opSort.Inc()
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return Compare(b.tail.Get(idx[i]), b.tail.Get(idx[j])) < 0
	})
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
}

// SortHead returns a copy of the BAT ordered by ascending head.
func (b *BAT) SortHead() *BAT {
	opSort.Inc()
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return Compare(b.head.Get(idx[i]), b.head.Get(idx[j])) < 0
	})
	return &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
}

// String renders a short description of the BAT.
func (b *BAT) String() string {
	return fmt.Sprintf("bat[%v,%v]#%d", b.head.Type(), b.tail.Type(), b.Len())
}

// Dump renders up to max associations for debugging.
func (b *BAT) Dump(max int) string {
	s := b.String() + "{"
	n := b.Len()
	if max > 0 && n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("[%v,%v]", b.Head(i), b.Tail(i))
	}
	if n < b.Len() {
		s += ", ..."
	}
	return s + "}"
}

// hashTable indexes column positions by value.
type hashTable struct {
	byInt map[int64][]int
	byStr map[string][]int
	byFlt map[float64][]int
	dense bool // void column: position == value
	n     int
}

// newHashTable returns an empty hash table for keys of type t, sized
// for about capHint entries. Void columns are dense: position == value,
// so no map is allocated.
func newHashTable(t Type, capHint int) *hashTable {
	ht := &hashTable{}
	switch t {
	case Void:
		ht.dense = true
	case OIDT, IntT, BoolT:
		ht.byInt = make(map[int64][]int, capHint)
	case FloatT:
		ht.byFlt = make(map[float64][]int, capHint)
	case StrT, BlobT:
		ht.byStr = make(map[string][]int, capHint)
	}
	return ht
}

// insert records position i of column c in the table. Positions must
// be inserted in ascending order per key; lookup returns them in
// insertion order.
func (ht *hashTable) insert(c Column, i int) {
	switch c.Type() {
	case OIDT, IntT, BoolT:
		k := c.Get(i).Int()
		ht.byInt[k] = append(ht.byInt[k], i)
	case FloatT:
		k := c.Get(i).Float()
		ht.byFlt[k] = append(ht.byFlt[k], i)
	case StrT:
		k := c.Get(i).Str()
		ht.byStr[k] = append(ht.byStr[k], i)
	case BlobT:
		k := string(c.Get(i).Blob())
		ht.byStr[k] = append(ht.byStr[k], i)
	}
}

// buildHash builds the serial hash index over c. Integer-domain keys
// (int, oid, bool) get the compact count-then-fill layout; other types
// keep the per-key slice table.
func buildHash(c Column) hashIndex {
	if c.Type() != Void {
		if keyAt := intReader(c); keyAt != nil {
			n := c.Len()
			return buildCompactInt(keyAt, n, func(visit func(i int)) {
				for i := 0; i < n; i++ {
					visit(i)
				}
			})
		}
	}
	ht := newHashTable(c.Type(), c.Len())
	ht.n = c.Len()
	if ht.dense {
		return ht
	}
	for i := 0; i < c.Len(); i++ {
		ht.insert(c, i)
	}
	return ht
}

// compactIntTable is the allocation-disciplined hash index for
// integer-domain keys: instead of one growing position slice per key
// (an allocation per distinct key plus append churn), all positions
// live in one flat array grouped by key, with a slot map and a prefix
// offset array carving it into per-key spans. Lookup returns a
// subslice — zero allocations per probe — and spans keep the build's
// ascending position order, exactly what hashTable.lookup returns.
type compactIntTable struct {
	slots map[int64]int32
	offs  []int
	pos   []int
}

// buildCompactInt builds a compactIntTable in two passes over the
// positions that each yields (which must be visited in the same order
// both times, ascending per key): pass one assigns slots in
// first-occurrence order and counts per-key occupancy, pass two fills
// the flat position array through prefix-sum cursors.
func buildCompactInt(keyAt func(i int) int64, total int, each func(visit func(i int))) *compactIntTable {
	t := &compactIntTable{slots: make(map[int64]int32, total)}
	counts := make([]int, 0, 16)
	each(func(i int) {
		k := keyAt(i)
		slot, seen := t.slots[k]
		if !seen {
			slot = int32(len(counts))
			t.slots[k] = slot
			counts = append(counts, 0)
		}
		counts[slot]++
	})
	t.offs = make([]int, len(counts)+1)
	for s, c := range counts {
		t.offs[s+1] = t.offs[s] + c
	}
	t.pos = make([]int, total)
	copy(counts, t.offs[:len(counts)]) // counts becomes the per-slot write cursor
	each(func(i int) {
		slot := t.slots[keyAt(i)]
		t.pos[counts[slot]] = i
		counts[slot]++
	})
	return t
}

// lookup returns the ascending positions holding v, as a span of the
// flat position array. Non-integer probes miss, matching the typed
// maps of hashTable.
func (t *compactIntTable) lookup(v Value) []int {
	switch v.Typ {
	case OIDT, IntT, BoolT:
		if slot, ok := t.slots[v.Int()]; ok {
			return t.pos[t.offs[slot]:t.offs[slot+1]]
		}
	}
	return nil
}

func (ht *hashTable) lookup(v Value) []int {
	if ht.dense {
		i := int(v.Int())
		if v.Typ == OIDT && i >= 0 && i < ht.n {
			return []int{i}
		}
		return nil
	}
	switch v.Typ {
	case OIDT, IntT, BoolT:
		return ht.byInt[v.Int()]
	case FloatT:
		return ht.byFlt[v.Float()]
	case StrT:
		return ht.byStr[v.Str()]
	case BlobT:
		return ht.byStr[string(v.Blob())]
	}
	return nil
}
