package monet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property test for the adaptive access paths: any interleaving of
// SelectRange/Append/Put/Drop over a store whose columns end up
// cracked, zone-mapped and dictionary-encoded must return exactly the
// positions the naive serial scan returns — per query, at any pool
// width. The per-op sequence is serial (the store's documented
// guarantee for index consistency is reads-after-writes, as for plain
// scans); the parallelism under test is the morsel fan-out inside
// each select, which the -race runs at widths 4 and 8 exercise.

// propColumn mirrors one named BAT as the plain tail slice the model
// scans naively.
type propColumn struct {
	typ   Type
	tails []Value
}

func (pc *propColumn) naive(lo, hi Value) []int {
	idx := []int{}
	for i, t := range pc.tails {
		if Compare(t, lo) >= 0 && Compare(t, hi) <= 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

func (pc *propColumn) toBAT() *BAT {
	b := NewBATCap(Void, pc.typ, len(pc.tails))
	for _, t := range pc.tails {
		b.MustInsert(VoidValue(), t)
	}
	return b
}

// randValue draws a tail value for a column type; floats include the
// occasional NaN so the unsafe fallback is part of the property.
func randValue(rng *rand.Rand, typ Type) Value {
	switch typ {
	case IntT:
		return NewInt(int64(rng.Intn(500)))
	case FloatT:
		if rng.Intn(200) == 0 {
			return NewFloat(math.NaN())
		}
		return NewFloat(float64(rng.Intn(500)) / 4)
	default:
		return NewStr(fmt.Sprintf("label-%02d", rng.Intn(40)))
	}
}

// randBounds draws select bounds, occasionally inverted (empty range)
// or mixed-type (scan-fallback path).
func randBounds(rng *rand.Rand, typ Type) (Value, Value) {
	if rng.Intn(20) == 0 {
		return NewFloat(1), NewInt(3) // mixed types: must fall back
	}
	a, b := randValue(rng, typ), randValue(rng, typ)
	if rng.Intn(10) != 0 && Compare(b, a) < 0 {
		a, b = b, a // mostly well-ordered, sometimes empty
	}
	return a, b
}

func genColumn(rng *rand.Rand, typ Type, n int) *propColumn {
	pc := &propColumn{typ: typ, tails: make([]Value, n)}
	for i := range pc.tails {
		pc.tails[i] = randValue(rng, typ)
	}
	return pc
}

func TestPropIndexedSelectsMatchNaiveScan(t *testing.T) {
	for _, width := range []int{1, 4, 8} {
		width := width
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			prev := SetDefaultPoolWorkers(width)
			defer SetDefaultPoolWorkers(prev)

			rng := rand.New(rand.NewSource(int64(1000 + width)))
			s := NewStore()
			model := map[string]*propColumn{}
			names := []string{"ints", "floats", "labels"}
			types := map[string]Type{"ints": IntT, "floats": FloatT, "labels": StrT}
			for _, name := range names {
				pc := genColumn(rng, types[name], 2*MorselSize+rng.Intn(MorselSize))
				model[name] = pc
				s.Put(name, pc.toBAT())
			}
			// Hot ranges per name so the workload repeats predicates
			// and the gate graduates columns to cracker/dict paths.
			hot := map[string][2]Value{}
			for _, name := range names {
				lo, hi := randBounds(rng, types[name])
				hot[name] = [2]Value{lo, hi}
			}

			ops := 400
			if testing.Short() {
				ops = 120
			}
			seenPaths := map[AccessPath]bool{}
			for op := 0; op < ops; op++ {
				name := names[rng.Intn(len(names))]
				pc := model[name]
				switch r := rng.Intn(100); {
				case r < 70: // select
					var lo, hi Value
					if h, ok := hot[name]; ok && rng.Intn(2) == 0 {
						lo, hi = h[0], h[1]
					} else {
						lo, hi = randBounds(rng, types[name])
					}
					idx, info, err := s.SelectPositions(name, lo, hi)
					if pc == nil {
						if err == nil {
							t.Fatalf("op %d: select on dropped %q succeeded", op, name)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: select %q: %v", op, name, err)
					}
					seenPaths[info.Path] = true
					want := pc.naive(lo, hi)
					if len(idx) != len(want) {
						t.Fatalf("op %d: %q [%v,%v] path=%v: %d rows, naive %d",
							op, name, lo, hi, info.Path, len(idx), len(want))
					}
					for i := range idx {
						if idx[i] != want[i] {
							t.Fatalf("op %d: %q [%v,%v] path=%v: position %d is %d, naive %d",
								op, name, lo, hi, info.Path, i, idx[i], want[i])
						}
					}
				case r < 90: // append
					if pc == nil {
						continue
					}
					v := randValue(rng, types[name])
					if err := s.Append(name, VoidValue(), v); err != nil {
						t.Fatalf("op %d: append %q: %v", op, name, err)
					}
					pc.tails = append(pc.tails, v)
				case r < 95: // put (replace)
					npc := genColumn(rng, types[name], 2*MorselSize+rng.Intn(MorselSize))
					model[name] = npc
					s.Put(name, npc.toBAT())
				default: // drop, then usually revive later
					if pc == nil {
						continue
					}
					if err := s.Drop(name); err != nil {
						t.Fatalf("op %d: drop %q: %v", op, name, err)
					}
					model[name] = nil
					if rng.Intn(2) == 0 {
						npc := genColumn(rng, types[name], 2*MorselSize+rng.Intn(MorselSize))
						model[name] = npc
						s.Put(name, npc.toBAT())
					}
				}
			}
			// The workload must actually have exercised the index
			// paths, or the property is vacuous.
			for _, p := range []AccessPath{PathScan, PathCrack, PathDict} {
				if !seenPaths[p] {
					t.Fatalf("property run never took the %v path", p)
				}
			}
		})
	}
}
