package monet

import (
	"context"
	"fmt"
	"time"

	"cobra/internal/obs"
)

// Streaming-append metrics: chunk appends through AppendColumns and
// the rows they carried.
var (
	cAppendBatches = obs.C("monet.store.append_batches")
	cAppendRows    = obs.C("monet.store.append_rows")
)

// snap returns a shallow copy of a column: a new column header over
// the same backing array. Appending to the copy either extends the
// array in place past the original's length (positions the original
// can never index) or reallocates; either way the original column is
// immutable afterwards. This is what makes store-level appends
// copy-on-write in O(appended) instead of O(existing).
func snap(c Column) Column {
	switch t := c.(type) {
	case *voidColumn:
		return &voidColumn{n: t.n}
	case *oidColumn:
		return &oidColumn{v: t.v}
	case *intColumn:
		return &intColumn{v: t.v}
	case *floatColumn:
		return &floatColumn{v: t.v}
	case *strColumn:
		return &strColumn{v: t.v}
	case *boolColumn:
		return &boolColumn{v: t.v}
	case *blobColumn:
		return &blobColumn{v: t.v}
	default:
		return c.Clone()
	}
}

// appendSnap returns a new BAT holding the receiver's rows plus the
// given (head, tail) pairs, leaving the receiver untouched: readers
// holding the old *BAT keep a consistent prefix snapshot while the
// store swaps the extended version in under its write lock.
func (b *BAT) appendSnap(hs, ts []Value) (*BAT, error) {
	nb := &BAT{head: snap(b.head), tail: snap(b.tail)}
	for i := range hs {
		if err := nb.Insert(hs[i], ts[i]); err != nil {
			return nil, err
		}
	}
	return nb, nil
}

// Watermark returns the current row count and mutation epoch of a
// named BAT (0, 0 when the name is not registered). The pair is read
// atomically under the store lock, so it names a consistent point in
// the BAT's append history: a subscription that saw (rows, epoch) can
// later ask "did anything change?" by comparing epochs and "what is
// new?" by reading rows from the old count on.
func (s *Store) Watermark(name string) (rows int, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.bats[name]; ok {
		rows = b.Len()
	}
	return rows, s.epochs[name]
}

// AppendColumns appends n rows to a group of BATs in one critical
// section: the decomposed-storage analogue of inserting n tuples into
// an n-column relation. All named BATs must exist and hold the same
// row count (they share head OIDs); tails[i] carries the n tail
// values for names[i]. Head values are generated per column type:
// void heads stay virtual, OID heads continue the dense sequence from
// the current row count. The previous row count — the append
// watermark — is returned, so callers know exactly which rows are new.
//
// The append is copy-on-write: each BAT is extended into a fresh
// header sharing the old storage, then swapped in, so concurrent
// readers holding pre-append *BAT snapshots are never mutated under
// and see a consistent prefix. Every row is journaled (WAL) and every
// name's epoch is bumped, invalidating adaptive access paths.
func (s *Store) AppendColumns(ctx context.Context, names []string, tails [][]Value) (fromRow int, err error) {
	if len(names) == 0 || len(names) != len(tails) {
		return 0, fmt.Errorf("monet: AppendColumns needs matching names and tails")
	}
	n := len(tails[0])
	for i, ts := range tails {
		if len(ts) != n {
			return 0, fmt.Errorf("monet: AppendColumns column %q has %d rows, want %d", names[i], len(ts), n)
		}
	}
	res := obs.SpanFromContext(ctx).Resources()
	s.mu.Lock()
	defer s.mu.Unlock()
	bats := make([]*BAT, len(names))
	for i, name := range names {
		b, ok := s.bats[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchBAT, name)
		}
		if i == 0 {
			fromRow = b.Len()
		} else if b.Len() != fromRow {
			return 0, fmt.Errorf("monet: AppendColumns on misaligned BATs: %q has %d rows, %q has %d",
				names[0], fromRow, name, b.Len())
		}
		bats[i] = b
	}
	heads := make([][]Value, len(names))
	for i, b := range bats {
		hs, err := generateHeads(b.HeadType(), fromRow, n)
		if err != nil {
			return 0, fmt.Errorf("monet: AppendColumns %q: %w", names[i], err)
		}
		heads[i] = hs
	}
	next := make([]*BAT, len(names))
	for i, b := range bats {
		nb, err := b.appendSnap(heads[i], tails[i])
		if err != nil {
			return 0, fmt.Errorf("monet: AppendColumns %q: %w", names[i], err)
		}
		next[i] = nb
	}
	// All rows validated: apply and journal. Journal errors degrade
	// durability but the in-memory append stands, matching AppendCtx.
	var jerr error
	for i, name := range names {
		s.bats[name] = next[i]
		s.bumpEpochLocked(name)
		if s.journal != nil {
			jStart := time.Now()
			for r := 0; r < n; r++ {
				if err := s.journal.JournalAppend(name, heads[i][r], tails[i][r]); err != nil {
					cJournalErr.Inc()
					jerr = err
					break
				}
			}
			res.AddWALWait(time.Since(jStart))
		}
	}
	cAppendBatches.Inc()
	cAppendRows.Add(int64(n * len(names)))
	return fromRow, jerr
}

// generateHeads builds the head values for an append of n rows
// starting at row base. Only virtual (void) and dense OID heads can be
// generated; value-typed heads would need caller-provided keys, which
// the streaming append path never has.
func generateHeads(t Type, base, n int) ([]Value, error) {
	hs := make([]Value, n)
	switch t {
	case Void:
		for i := range hs {
			hs[i] = VoidValue()
		}
	case OIDT:
		for i := range hs {
			hs[i] = NewOID(OID(base + i))
		}
	default:
		return nil, fmt.Errorf("cannot generate %v head values", t)
	}
	return hs, nil
}
