// Package gate provides runtime feature gates: named boolean flags
// that can be forced on, forced off, or ramped to a percentage of
// traffic, resolved per request key (a tenant, a connection, a query)
// with a stable hash so the same key always lands on the same side of
// a partial rollout.
//
// Gates let a risky engine change — the semantic result cache, a new
// access path, a fused pipeline — ship dark and ramp under live load:
// register the flag defaulted off, deploy, then raise the percentage
// over the wire (GATES SET) while watching the change's own metrics
// (qcache.*, pool.*, monet.index.*) as the rollback signal. Turning
// the flag off is the rollback.
//
// Resolution is cached: a resolved *Flag reads one atomic word per
// Enabled call, so gating a hot path costs a few nanoseconds and no
// locks. Flag state changes (Set) publish through the same atomic, so
// ramps take effect on the next request without restarting.
package gate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cobra/internal/obs"
)

// Gate metrics: how many Enabled resolutions ran and how many came
// back false (the dark side of a ramp). A climbing denied count on a
// flag that should be fully on is the first sign a ramp was rolled
// back.
var (
	cChecks = obs.C("gate.checks")
	cDenied = obs.C("gate.denied")
)

// Flag state encoding for the atomic word: mode in the low bits,
// percentage in the next byte.
const (
	modeOff uint32 = iota
	modeOn
	modePercent
)

// Flag is one registered feature gate. The zero value is unusable;
// obtain flags from a Registry. A Flag handle may be kept and queried
// forever — Enabled always reflects the registry's current state.
type Flag struct {
	name string
	def  bool
	// state packs mode (low 8 bits) and percentage (next 8 bits).
	state atomic.Uint32
}

// Name returns the flag's registered name.
func (f *Flag) Name() string { return f.name }

// Default reports the value the flag was registered with.
func (f *Flag) Default() bool { return f.def }

// Enabled resolves the flag for a request key. Forced-on flags admit
// everything, forced-off flags nothing; a percentage flag admits the
// keys whose stable hash falls under the ramp — so a given tenant
// stays admitted (or not) as long as the percentage holds, rather
// than flapping per request.
func (f *Flag) Enabled(key string) bool {
	cChecks.Inc()
	s := f.state.Load()
	ok := false
	switch s & 0xff {
	case modeOn:
		ok = true
	case modeOff:
		ok = false
	case modePercent:
		pct := (s >> 8) & 0xff
		ok = bucket(f.name, key) < pct
	}
	if !ok {
		cDenied.Inc()
	}
	return ok
}

// State renders the flag's current setting ("on", "off" or "42%").
func (f *Flag) State() string {
	s := f.state.Load()
	switch s & 0xff {
	case modeOn:
		return "on"
	case modeOff:
		return "off"
	default:
		return strconv.Itoa(int((s>>8)&0xff)) + "%"
	}
}

// set parses and applies a state string: "on", "off", or "NN%".
func (f *Flag) set(value string) error {
	v := strings.ToLower(strings.TrimSpace(value))
	switch v {
	case "on", "true", "1":
		f.state.Store(modeOn)
		return nil
	case "off", "false", "0":
		f.state.Store(modeOff)
		return nil
	}
	pctStr, ok := strings.CutSuffix(v, "%")
	if !ok {
		return fmt.Errorf("gate: bad state %q (want on, off or NN%%)", value)
	}
	pct, err := strconv.Atoi(pctStr)
	if err != nil || pct < 0 || pct > 100 {
		return fmt.Errorf("gate: bad percentage %q (want 0..100)", value)
	}
	switch pct {
	case 0:
		f.state.Store(modeOff)
	case 100:
		f.state.Store(modeOn)
	default:
		f.state.Store(modePercent | uint32(pct)<<8)
	}
	return nil
}

// bucket hashes (flag, key) into [0,100). FNV-1a keeps the placement
// stable across processes and restarts, so a ramp admits the same
// tenants everywhere.
func bucket(flag, key string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(flag); i++ {
		h = (h ^ uint64(flag[i])) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return uint32(h % 100)
}

// Registry is a named set of feature gates. It is safe for concurrent
// use; the hot path (Flag.Enabled on a held handle) never touches the
// registry lock.
type Registry struct {
	mu    sync.RWMutex
	flags map[string]*Flag
}

// NewRegistry returns an empty gate registry.
func NewRegistry() *Registry {
	return &Registry{flags: map[string]*Flag{}}
}

// Register creates (or returns the existing) flag under name with the
// given default. Registering an existing name does not reset its
// state — a runtime Set survives late registrations.
func (r *Registry) Register(name string, def bool) *Flag {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.flags[name]; ok {
		return f
	}
	f := &Flag{name: name, def: def}
	if def {
		f.state.Store(modeOn)
	}
	r.flags[name] = f
	return f
}

// Lookup returns the named flag, or nil if it was never registered.
func (r *Registry) Lookup(name string) *Flag {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.flags[name]
}

// Set changes a registered flag's state: "on", "off" or "NN%".
func (r *Registry) Set(name, value string) error {
	f := r.Lookup(name)
	if f == nil {
		return fmt.Errorf("gate: unknown flag %q", name)
	}
	return f.set(value)
}

// Enabled resolves a flag by name for a request key. Unregistered
// flags resolve to false — an unknown gate never admits traffic.
func (r *Registry) Enabled(name, key string) bool {
	f := r.Lookup(name)
	if f == nil {
		return false
	}
	return f.Enabled(key)
}

// List returns every flag sorted by name.
func (r *Registry) List() []*Flag {
	r.mu.RLock()
	out := make([]*Flag, 0, len(r.flags))
	for _, f := range r.flags {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
