package gate

import (
	"sync"
	"testing"
)

func TestOnOffDefaults(t *testing.T) {
	r := NewRegistry()
	on := r.Register("cache.enabled", true)
	off := r.Register("fusion.enabled", false)
	if !on.Enabled("tenant-a") {
		t.Fatal("default-on flag denied")
	}
	if off.Enabled("tenant-a") {
		t.Fatal("default-off flag admitted")
	}
	if got := on.State(); got != "on" {
		t.Fatalf("State() = %q", got)
	}
	if got := off.State(); got != "off" {
		t.Fatalf("State() = %q", got)
	}
}

func TestSetTransitions(t *testing.T) {
	r := NewRegistry()
	r.Register("x", false)
	for _, step := range []struct {
		value string
		state string
	}{
		{"on", "on"}, {"off", "off"}, {"37%", "37%"},
		{"0%", "off"}, {"100%", "on"},
	} {
		if err := r.Set("x", step.value); err != nil {
			t.Fatalf("Set(%q): %v", step.value, err)
		}
		if got := r.Lookup("x").State(); got != step.state {
			t.Fatalf("after Set(%q): State() = %q, want %q", step.value, got, step.state)
		}
	}
	for _, bad := range []string{"maybe", "101%", "-1%", "12"} {
		if err := r.Set("x", bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
	if err := r.Set("nope", "on"); err == nil {
		t.Fatal("Set on unregistered flag accepted")
	}
}

func TestPercentageStableAndProportional(t *testing.T) {
	r := NewRegistry()
	f := r.Register("ramp", false)
	if err := r.Set("ramp", "30%"); err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 1000; i++ {
		key := "tenant-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10))
		first := f.Enabled(key)
		// Stability: the same key resolves the same way every time.
		for j := 0; j < 3; j++ {
			if f.Enabled(key) != first {
				t.Fatalf("key %q flapped", key)
			}
		}
		if first {
			admitted++
		}
	}
	// 30% ramp over ~260 distinct keys: allow a generous band.
	if admitted < 150 || admitted > 450 {
		t.Fatalf("30%% ramp admitted %d/1000", admitted)
	}
}

func TestUnregisteredDeniesAndListSorted(t *testing.T) {
	r := NewRegistry()
	if r.Enabled("ghost", "k") {
		t.Fatal("unregistered flag admitted traffic")
	}
	r.Register("b", true)
	r.Register("a", false)
	l := r.List()
	if len(l) != 2 || l[0].Name() != "a" || l[1].Name() != "b" {
		t.Fatalf("List() = %v", l)
	}
	if !l[1].Default() {
		t.Fatal("Default() lost")
	}
}

func TestRegisterIdempotentKeepsState(t *testing.T) {
	r := NewRegistry()
	f := r.Register("x", false)
	if err := r.Set("x", "on"); err != nil {
		t.Fatal(err)
	}
	again := r.Register("x", false)
	if again != f {
		t.Fatal("re-registration returned a new flag")
	}
	if again.State() != "on" {
		t.Fatal("re-registration reset runtime state")
	}
}

func TestConcurrentResolveAndSet(t *testing.T) {
	r := NewRegistry()
	f := r.Register("hot", true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Enabled("k")
				r.Enabled("hot", "k")
			}
		}()
	}
	for i := 0; i < 100; i++ {
		if err := r.Set("hot", []string{"on", "off", "50%"}[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
