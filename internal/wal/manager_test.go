package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cobra/internal/monet"
)

// newDriversBAT builds a small [void,str] BAT.
func newDriversBAT(names ...string) *monet.BAT {
	b := monet.NewBAT(monet.Void, monet.StrT)
	for _, n := range names {
		b.MustInsert(monet.VoidValue(), monet.NewStr(n))
	}
	return b
}

// copyTree copies a data directory for crash simulation.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagerBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	m, err := Open(dir, store, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("f1/drivers", newDriversBAT("msc", "rbar", "dc")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("f1/laps", monet.NewBAT(monet.OIDT, monet.FloatT)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := store.Append("f1/laps", monet.NewOID(monet.OID(i)), monet.NewFloat(80+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Put("scratch", newDriversBAT("x")); err != nil {
		t.Fatal(err)
	}
	if err := store.Drop("scratch"); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: SyncAlways means everything is on disk.
	_ = m

	store2 := monet.NewStore()
	m2, err := Open(dir, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if store2.Has("scratch") {
		t.Error("dropped BAT resurrected")
	}
	d, err := store2.Get("f1/drivers")
	if err != nil || d.Len() != 3 {
		t.Fatalf("drivers: %v, %v", d, err)
	}
	laps, err := store2.Get("f1/laps")
	if err != nil || laps.Len() != 5 {
		t.Fatalf("laps: %v, %v", laps, err)
	}
	if got := laps.Tail(4).Float(); got != 84 {
		t.Fatalf("last lap = %v", got)
	}
	if m2.Recovery.Replayed == 0 {
		t.Error("recovery replayed nothing")
	}
}

func TestManagerCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	m, err := Open(dir, store, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", newDriversBAT("one", "two")); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutation lands in the WAL only.
	if err := store.Put("b", newDriversBAT("three")); err != nil {
		t.Fatal(err)
	}

	// The pre-checkpoint segments must be gone.
	st, err := Replay(filepath.Join(dir, "wal"), 0, func(p []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("WAL holds %d records after checkpoint, want 1", st.Records)
	}

	store2 := monet.NewStore()
	m2, err := Open(dir, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !store2.Has("a") || !store2.Has("b") {
		t.Fatalf("recovered names: %v", store2.Names())
	}
	if m2.Recovery.SnapshotBATs != 1 || m2.Recovery.Replayed != 1 {
		t.Fatalf("recovery stats: %+v", m2.Recovery)
	}
}

func TestManagerCloseCheckpointsCleanly(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	m, err := Open(dir, store, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", newDriversBAT("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := monet.NewStore()
	m2, err := Open(dir, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Recovery.Replayed != 0 {
		t.Errorf("clean shutdown still replayed %d records", m2.Recovery.Replayed)
	}
	if !store2.Has("a") {
		t.Error("BAT lost across clean shutdown")
	}
}

// TestRecoveryAtEveryTruncationOffset is the fault-injection suite: it
// simulates a SIGKILL at every byte of the WAL by truncating the log
// at each offset and verifying that recovery always succeeds and
// yields a prefix of the committed mutation sequence.
func TestRecoveryAtEveryTruncationOffset(t *testing.T) {
	base := t.TempDir()
	store := monet.NewStore()
	if _, err := Open(base, store, Options{Sync: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	const appends = 12
	if err := store.Put("laps", monet.NewBAT(monet.OIDT, monet.IntT)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := store.Append("laps", monet.NewOID(monet.OID(i)), monet.NewInt(int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}

	walDir := filepath.Join(base, "wal")
	seqs, err := Segments(walDir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments: %v, %v", seqs, err)
	}
	segRel := filepath.Join("wal", segmentName(seqs[0]))
	full, err := os.ReadFile(filepath.Join(base, segRel))
	if err != nil {
		t.Fatal(err)
	}

	prevRows := -1
	for off := 0; off <= len(full); off++ {
		dir := t.TempDir()
		copyTree(t, base, dir)
		if err := os.WriteFile(filepath.Join(dir, segRel), full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		store2 := monet.NewStore()
		m2, err := Open(dir, store2, Options{})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		rows := 0
		if b, err := store2.Get("laps"); err == nil {
			rows = b.Len()
			// Prefix consistency: row i must hold exactly the i-th
			// committed append.
			for i := 0; i < rows; i++ {
				if b.Head(i).OID() != monet.OID(i) || b.Tail(i).Int() != int64(100+i) {
					t.Fatalf("offset %d: row %d = (%v,%v), not the committed prefix",
						off, i, b.Head(i), b.Tail(i))
				}
			}
		}
		if rows > appends {
			t.Fatalf("offset %d: recovered %d rows, more than were written", off, rows)
		}
		// More surviving bytes can never recover less data.
		if rows < prevRows {
			t.Fatalf("offset %d: recovered %d rows, previous offset recovered %d", off, rows, prevRows)
		}
		prevRows = rows
		m2.Close()
	}
	if prevRows != appends {
		t.Fatalf("full log recovered %d rows, want %d", prevRows, appends)
	}
}

// TestRecoveryWithCorruptedByte flips each byte of the WAL in turn and
// verifies recovery never fails and never invents data beyond the
// intact prefix.
func TestRecoveryWithCorruptedByte(t *testing.T) {
	base := t.TempDir()
	store := monet.NewStore()
	if _, err := Open(base, store, Options{Sync: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("laps", monet.NewBAT(monet.OIDT, monet.IntT)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := store.Append("laps", monet.NewOID(monet.OID(i)), monet.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	walDir := filepath.Join(base, "wal")
	seqs, _ := Segments(walDir)
	segRel := filepath.Join("wal", segmentName(seqs[0]))
	full, err := os.ReadFile(filepath.Join(base, segRel))
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 7
	}
	for off := 0; off < len(full); off += step {
		dir := t.TempDir()
		copyTree(t, base, dir)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, segRel), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		store2 := monet.NewStore()
		m2, err := Open(dir, store2, Options{})
		if err != nil {
			t.Fatalf("corrupt byte %d: recovery failed: %v", off, err)
		}
		if b, err := store2.Get("laps"); err == nil {
			for i := 0; i < b.Len(); i++ {
				if b.Head(i).OID() != monet.OID(i) || b.Tail(i).Int() != int64(i) {
					t.Fatalf("corrupt byte %d: row %d = (%v,%v) is not the committed prefix",
						off, i, b.Head(i), b.Tail(i))
				}
			}
		}
		m2.Close()
	}
}

// TestTornTailThenNewWritesSurvive covers the repair path: a crash
// leaves a torn tail, the next run writes more records, and a second
// crash must not lose them behind the old tear.
func TestTornTailThenNewWritesSurvive(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	if _, err := Open(dir, store, Options{Sync: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", newDriversBAT("one")); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail: append garbage half-record to the segment.
	walDir := filepath.Join(dir, "wal")
	seqs, _ := Segments(walDir)
	seg := filepath.Join(walDir, segmentName(seqs[len(seqs)-1]))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second run: recovery repairs the tear, then writes more.
	store2 := monet.NewStore()
	m2, err := Open(dir, store2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Recovery.Torn {
		t.Fatal("tear not detected")
	}
	if err := store2.Put("b", newDriversBAT("two")); err != nil {
		t.Fatal(err)
	}
	// Crash again (no Close). Third run must see both BATs.
	store3 := monet.NewStore()
	m3, err := Open(dir, store3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if !store3.Has("a") || !store3.Has("b") {
		t.Fatalf("after tear+repair+write, recovered names: %v", store3.Names())
	}
}

// TestCrashDuringCheckpointWindows drops the process at each step of
// the checkpoint protocol and verifies recovery still sees all
// committed data.
func TestCrashDuringCheckpointWindows(t *testing.T) {
	// Window 1: snapshot written, CURRENT not yet flipped (orphan snap
	// dir + full WAL). Simulated by writing a snapshot by hand.
	dir := t.TempDir()
	store := monet.NewStore()
	if _, err := Open(dir, store, Options{Sync: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", newDriversBAT("one", "two")); err != nil {
		t.Fatal(err)
	}
	if err := store.Snapshot(filepath.Join(dir, "snap-00000001")); err != nil {
		t.Fatal(err)
	}
	store2 := monet.NewStore()
	m2, err := Open(dir, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b, err := store2.Get("a"); err != nil || b.Len() != 2 {
		t.Fatalf("window 1: %v, %v", b, err)
	}
	// The orphan snapshot is garbage-collected.
	if _, err := os.Stat(filepath.Join(dir, "snap-00000001")); !os.IsNotExist(err) {
		t.Error("window 1: orphan snapshot not collected")
	}
	m2.Close()

	// Window 2: CURRENT flipped, old segments not yet removed. The
	// minSeq recorded in CURRENT must keep them out of replay.
	dir = t.TempDir()
	store = monet.NewStore()
	m, err := Open(dir, store, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", newDriversBAT("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a stale pre-checkpoint segment to simulate the
	// unfinished purge: replaying it would double-apply history.
	stale := filepath.Join(dir, "wal", segmentName(1))
	l, err := OpenLog(t.TempDir(), LogOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodePut("ghost", newDriversBAT("boo"))
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.Close()
	ghosts, _ := Segments(l.dir)
	data, _ := os.ReadFile(filepath.Join(l.dir, segmentName(ghosts[0])))
	if err := os.WriteFile(stale, data, 0o644); err != nil {
		t.Fatal(err)
	}
	store2 = monet.NewStore()
	m2, err = Open(dir, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if store2.Has("ghost") {
		t.Error("window 2: stale pre-checkpoint segment was replayed")
	}
	if !store2.Has("a") {
		t.Error("window 2: checkpointed BAT lost")
	}
}

// TestSnapshotAtomicityCrashMidWrite verifies the temp-dir + rename
// discipline: a half-written snapshot directory is never visible at
// the target path.
func TestSnapshotAtomicityCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	if err := store.Put("a", newDriversBAT("one")); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "snap")
	if err := store.Snapshot(target); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot; the first must stay loadable
	// the whole time (we can only probe the end state here, but a
	// half-written state would live in .snap-tmp-*, not at target).
	if err := store.Put("b", newDriversBAT("two")); err != nil {
		t.Fatal(err)
	}
	if err := store.Snapshot(target); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".snap-tmp-") {
			t.Errorf("leftover temp dir %s", e.Name())
		}
	}
	store2 := monet.NewStore()
	if err := store2.LoadSnapshot(target); err != nil {
		t.Fatal(err)
	}
	if !store2.Has("a") || !store2.Has("b") {
		t.Fatalf("snapshot contents: %v", store2.Names())
	}
}

func TestManagerJournalErrorAfterLogClosed(t *testing.T) {
	dir := t.TempDir()
	store := monet.NewStore()
	m, err := Open(dir, store, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Close detaches the journal, so further Puts are memory-only and
	// must not error.
	if err := store.Put("late", newDriversBAT("x")); err != nil {
		t.Fatalf("post-close Put: %v", err)
	}
}
