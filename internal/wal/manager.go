package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Durability metrics, registered in the Default obs registry.
var (
	cCheckpoints   = obs.C("wal.checkpoints")
	cReplayed      = obs.C("wal.recovery_records")
	cTornTails     = obs.C("wal.recovery_torn_tails")
	gRecoveryNs    = obs.G("wal.recovery_ns")
	hCheckpoint    = obs.H("wal.checkpoint")
	cJournalFailed = obs.C("wal.journal_failures")
)

// Options configures a Manager.
type Options struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes is the WAL rotation threshold (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery, when positive, starts a background goroutine
	// that checkpoints at this period. Zero means checkpoints happen
	// only when Checkpoint is called (e.g. via the server's CHECKPOINT
	// command) and at Close.
	CheckpointEvery time.Duration
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	// SnapshotBATs is the number of BATs loaded from the checkpoint
	// snapshot (0 when starting fresh).
	SnapshotBATs int
	// Replayed is the number of intact WAL records applied on top.
	Replayed int
	// Torn reports whether replay ended at a torn or corrupt record.
	Torn bool
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Manager owns the durable state of one monet.Store: a data directory
// holding checkpoint snapshots, a CURRENT pointer file, and a wal/
// subdirectory of log segments. It implements monet.Journal, so after
// Open attaches it to the store every mutation is write-ahead logged.
//
// Layout of the data directory:
//
//	CURRENT            "snap-<seq> <minWALSeq>\n" — the live snapshot
//	snap-<seq>/        one .bat file per BAT (atomic: temp dir + rename)
//	wal/wal-<seq>.log  framed, checksummed mutation records
type Manager struct {
	dir   string
	store *monet.Store
	log   *Log
	opts  Options

	mu      sync.Mutex // serializes Checkpoint and Close
	snapSeq uint64     // sequence of the live snapshot
	closed  bool

	// Recovery holds the statistics of the Open that built this
	// manager.
	Recovery RecoveryStats

	stop chan struct{}
	done chan struct{}
}

// currentFile is the pointer file naming the live snapshot and the
// first WAL segment to replay on top of it.
const currentFile = "CURRENT"

// Open recovers the durable state in dir into store and returns a
// manager ready for logging: it loads the snapshot named by CURRENT
// (if any), replays the remaining WAL segments in order — stopping at
// a torn tail — attaches itself as the store's journal, and starts the
// background checkpointer when configured. The store should be empty;
// recovered BATs are Put into it.
func Open(dir string, store *monet.Store, opts Options) (*Manager, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, store: store, opts: opts}

	snapName, minSeq, err := readCurrent(filepath.Join(dir, currentFile))
	if err != nil {
		return nil, err
	}
	if snapName != "" {
		if err := store.LoadSnapshot(filepath.Join(dir, snapName)); err != nil {
			return nil, fmt.Errorf("wal: loading snapshot %s: %w", snapName, err)
		}
		m.snapSeq = snapSeqOf(snapName)
		m.Recovery.SnapshotBATs = store.Len()
	}

	walDir := filepath.Join(dir, "wal")
	st, err := Replay(walDir, minSeq, func(payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		return m.apply(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("wal: replay: %w", err)
	}
	m.Recovery.Replayed = st.Records
	m.Recovery.Torn = st.Torn
	cReplayed.Add(int64(st.Records))
	if st.Torn {
		cTornTails.Inc()
		// Truncate the tear so future replays read past this point
		// into segments appended from now on.
		if err := Repair(walDir, st); err != nil {
			return nil, fmt.Errorf("wal: repair: %w", err)
		}
	}

	m.log, err = OpenLog(walDir, LogOptions{
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		SegmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	m.gc(snapName)
	store.SetJournal(m)

	m.Recovery.Elapsed = time.Since(start)
	gRecoveryNs.Set(int64(m.Recovery.Elapsed))

	if opts.CheckpointEvery > 0 {
		m.stop = make(chan struct{})
		m.done = make(chan struct{})
		go m.checkpointLoop()
	}
	return m, nil
}

// apply replays one decoded record into the store. The journal is not
// attached yet, so nothing is re-logged.
func (m *Manager) apply(rec Record) error {
	switch rec.Op {
	case OpPut:
		return m.store.Put(rec.Name, rec.BAT)
	case OpAppend:
		b, err := m.store.Get(rec.Name)
		if err != nil {
			return err
		}
		return b.Insert(rec.Head, rec.Tail)
	case OpDrop:
		return m.store.Drop(rec.Name)
	default:
		return fmt.Errorf("wal: apply: unknown op %d", rec.Op)
	}
}

// JournalPut implements monet.Journal.
func (m *Manager) JournalPut(name string, b *monet.BAT) error {
	payload, err := EncodePut(name, b)
	if err != nil {
		cJournalFailed.Inc()
		return err
	}
	if err := m.log.Append(payload); err != nil {
		cJournalFailed.Inc()
		return err
	}
	return nil
}

// JournalAppend implements monet.Journal.
func (m *Manager) JournalAppend(name string, h, t monet.Value) error {
	payload, err := EncodeAppend(name, h, t)
	if err != nil {
		cJournalFailed.Inc()
		return err
	}
	if err := m.log.Append(payload); err != nil {
		cJournalFailed.Inc()
		return err
	}
	return nil
}

// JournalDrop implements monet.Journal.
func (m *Manager) JournalDrop(name string) error {
	if err := m.log.Append(EncodeDrop(name)); err != nil {
		cJournalFailed.Inc()
		return err
	}
	return nil
}

// Checkpoint writes an atomic snapshot of the store, flips CURRENT to
// it, and deletes the WAL segments the snapshot supersedes. The
// snapshot and the log rotation happen under the store's write lock,
// so the snapshot plus the segments after the rotation point are
// always a consistent recovery pair. Safe to call concurrently with
// queries and mutations; concurrent checkpoints serialize.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return os.ErrClosed
	}
	start := time.Now()
	newSeq := m.snapSeq + 1
	snapName := fmt.Sprintf("snap-%08d", newSeq)
	var sealed uint64
	err := m.store.Checkpoint(filepath.Join(m.dir, snapName), func() error {
		var err error
		sealed, err = m.log.Rotate()
		return err
	})
	if err != nil {
		return err
	}
	// Flip CURRENT: recovery now loads the new snapshot and replays
	// only segments after the rotation point. Until this rename lands,
	// the old CURRENT + full WAL remain a valid recovery pair.
	if err := writeCurrent(filepath.Join(m.dir, currentFile), snapName, sealed+1); err != nil {
		return err
	}
	m.snapSeq = newSeq
	// Everything at or before the sealed segment is now redundant.
	if err := m.log.RemoveThrough(sealed); err != nil {
		return err
	}
	m.gc(snapName)
	cCheckpoints.Inc()
	hCheckpoint.Observe(time.Since(start))
	return nil
}

// checkpointLoop services Options.CheckpointEvery.
func (m *Manager) checkpointLoop() {
	defer close(m.done)
	t := time.NewTicker(m.opts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = m.Checkpoint()
		case <-m.stop:
			return
		}
	}
}

// Close stops the background checkpointer, takes a final checkpoint so
// restart needs no replay, and closes the log.
func (m *Manager) Close() error {
	if m.stop != nil {
		close(m.stop)
		<-m.done
		m.stop = nil
	}
	err := m.Checkpoint()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return os.ErrClosed
	}
	m.closed = true
	m.store.SetJournal(nil)
	if cerr := m.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the manager's data directory.
func (m *Manager) Dir() string { return m.dir }

// gc removes snapshot directories other than the live one and stale
// temp dirs left by crashes mid-checkpoint. Best-effort: failures are
// ignored, the orphans are merely disk garbage.
func (m *Manager) gc(liveSnap string) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := e.IsDir() && name != liveSnap &&
			(strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, ".snap-tmp-"))
		if stale {
			os.RemoveAll(filepath.Join(m.dir, name))
		}
	}
}

// readCurrent parses the CURRENT pointer file. A missing file is a
// fresh database: empty snapshot name, replay from segment 0.
func readCurrent(path string) (snap string, minSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", 0, nil
	}
	if err != nil {
		return "", 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 {
		return "", 0, fmt.Errorf("wal: malformed CURRENT %q", strings.TrimSpace(string(data)))
	}
	seq, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("wal: malformed CURRENT wal seq: %w", err)
	}
	return fields[0], seq, nil
}

// writeCurrent atomically replaces the CURRENT pointer file.
func writeCurrent(path, snap string, minSeq uint64) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%s %d\n", snap, minSeq)), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// snapSeqOf parses the sequence number out of a snap-<seq> directory
// name, returning 0 for foreign names.
func snapSeqOf(name string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
