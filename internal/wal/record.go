package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"cobra/internal/monet"
)

// Record operation codes. The op byte is the first byte of every
// record payload.
const (
	// OpPut registers or replaces a whole BAT: the payload carries the
	// BAT name followed by the BAT in the kernel snapshot format.
	OpPut byte = 1
	// OpAppend appends one (head, tail) association: the payload
	// carries the BAT name, the two value types, and the two values in
	// the snapshot value codec.
	OpAppend byte = 2
	// OpDrop removes a BAT: the payload carries only the name.
	OpDrop byte = 3
)

// Record is one decoded write-ahead-log entry.
type Record struct {
	// Op is one of OpPut, OpAppend, OpDrop.
	Op byte
	// Name is the BAT the mutation targets.
	Name string
	// BAT is the full table carried by an OpPut record.
	BAT *monet.BAT
	// Head and Tail are the appended association of an OpAppend record.
	Head, Tail monet.Value
}

// EncodePut encodes an OpPut record for name and b.
func EncodePut(name string, b *monet.BAT) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(OpPut)
	writeName(&buf, name)
	if _, err := b.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeAppend encodes an OpAppend record for one association.
func EncodeAppend(name string, h, t monet.Value) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(OpAppend)
	writeName(&buf, name)
	buf.WriteByte(byte(h.Typ))
	buf.WriteByte(byte(t.Typ))
	if err := monet.WriteValue(&buf, h); err != nil {
		return nil, err
	}
	if err := monet.WriteValue(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeDrop encodes an OpDrop record for name.
func EncodeDrop(name string) []byte {
	var buf bytes.Buffer
	buf.WriteByte(OpDrop)
	writeName(&buf, name)
	return buf.Bytes()
}

// DecodeRecord parses one record payload.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record")
	}
	r := bytes.NewReader(payload)
	op, _ := r.ReadByte()
	name, err := readName(r)
	if err != nil {
		return Record{}, fmt.Errorf("wal: record name: %w", err)
	}
	rec := Record{Op: op, Name: name}
	switch op {
	case OpPut:
		b, err := monet.ReadBAT(r)
		if err != nil {
			return Record{}, fmt.Errorf("wal: put %q: %w", name, err)
		}
		rec.BAT = b
	case OpAppend:
		var types [2]byte
		if _, err := io.ReadFull(r, types[:]); err != nil {
			return Record{}, fmt.Errorf("wal: append %q: %w", name, err)
		}
		if rec.Head, err = monet.ReadValue(r, monet.Type(types[0])); err != nil {
			return Record{}, fmt.Errorf("wal: append %q head: %w", name, err)
		}
		if rec.Tail, err = monet.ReadValue(r, monet.Type(types[1])); err != nil {
			return Record{}, fmt.Errorf("wal: append %q tail: %w", name, err)
		}
	case OpDrop:
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", op)
	}
	return rec, nil
}

// writeName frames a BAT name as u32 length + bytes.
func writeName(buf *bytes.Buffer, name string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(name)))
	buf.Write(n[:])
	buf.WriteString(name)
}

// readName is the inverse of writeName.
func readName(r *bytes.Reader) (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.LittleEndian.Uint32(n[:])
	if int(ln) > r.Len() {
		return "", fmt.Errorf("name length %d exceeds record", ln)
	}
	buf := make([]byte, ln)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
