package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cobra/internal/monet"
)

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{
		{"always", SyncAlways},
		{"Interval", SyncInterval},
		{" none ", SyncNone},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	st, err := Replay(dir, 0, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn {
		t.Error("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLogRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 5 {
		t.Fatalf("expected rotation to create several segments, got %d", len(seqs))
	}
	st, err := Replay(dir, 0, func([]byte) error { return nil })
	if err != nil || st.Records != 20 || st.Torn {
		t.Fatalf("replay across segments: %+v, %v", st, err)
	}
	// minSeq skips early segments.
	st, err = Replay(dir, seqs[len(seqs)-1], func([]byte) error { return nil })
	if err != nil || st.Records >= 20 {
		t.Fatalf("minSeq did not skip segments: %+v, %v", st, err)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir, 0, func([]byte) error { return nil })
	if err != nil || st.Records != writers*per || st.Torn {
		t.Fatalf("replay: %+v, %v", st, err)
	}
}

func TestLogIntervalSyncFlushesEventually(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir, 0, func([]byte) error { return nil })
	if err != nil || st.Records != 1 {
		t.Fatalf("replay: %+v, %v", st, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := Segments(dir)
	path := filepath.Join(dir, segmentName(seqs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop off the last 3 bytes: a torn tail record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir, 0, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn || st.Records != 9 {
		t.Fatalf("torn replay: %+v", st)
	}
	// Repair truncates to the intact prefix; replay is then clean.
	if err := Repair(dir, st); err != nil {
		t.Fatal(err)
	}
	st, err = Replay(dir, 0, func([]byte) error { return nil })
	if err != nil || st.Torn || st.Records != 9 {
		t.Fatalf("post-repair replay: %+v, %v", st, err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	b := monet.NewBAT(monet.Void, monet.StrT)
	b.MustInsert(monet.VoidValue(), monet.NewStr("schumacher"))
	b.MustInsert(monet.VoidValue(), monet.NewStr("barrichello"))

	put, err := EncodePut("f1/drivers", b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(put)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpPut || rec.Name != "f1/drivers" || rec.BAT.Len() != 2 {
		t.Fatalf("put round trip: %+v", rec)
	}
	if got := rec.BAT.Tail(1).Str(); got != "barrichello" {
		t.Fatalf("put BAT tail = %q", got)
	}

	app, err := EncodeAppend("laps", monet.NewOID(7), monet.NewFloat(81.3))
	if err != nil {
		t.Fatal(err)
	}
	rec, err = DecodeRecord(app)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpAppend || rec.Name != "laps" || rec.Head.OID() != 7 || rec.Tail.Float() != 81.3 {
		t.Fatalf("append round trip: %+v", rec)
	}

	rec, err = DecodeRecord(EncodeDrop("laps"))
	if err != nil || rec.Op != OpDrop || rec.Name != "laps" {
		t.Fatalf("drop round trip: %+v, %v", rec, err)
	}

	if _, err := DecodeRecord(nil); err == nil {
		t.Error("DecodeRecord accepted empty payload")
	}
	if _, err := DecodeRecord([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Error("DecodeRecord accepted unknown op")
	}
}
