// Package wal is the durability subsystem of the Cobra VDBMS: it turns
// the paper's main-memory Monet kernel into a crash-safe store without
// giving up its in-memory execution model.
//
// Three mechanisms cooperate:
//
//   - A write-ahead log (Log): every store mutation — BAT create or
//     replace, single-association append, BAT drop — is encoded as a
//     length-prefixed, CRC32-checksummed record and appended to a
//     segmented log before it becomes visible. Group commit batches
//     concurrent fsyncs, and segments rotate at a size threshold.
//
//   - Checkpointing (Manager.Checkpoint): an atomic snapshot of the
//     whole store (temp directory + rename) is written under the
//     store's write lock, the log rotates at the same instant, and the
//     CURRENT pointer file flips to the new snapshot; older segments
//     become garbage.
//
//   - Crash recovery (Open): the latest snapshot named by CURRENT is
//     loaded and the remaining log segments are replayed in order.
//     A torn or corrupt record — the signature of a crash mid-write —
//     ends replay at the last intact prefix, so recovery always yields
//     a prefix-consistent store.
//
// The package plugs into the kernel through the monet.Journal
// interface and reports wal.* metrics (record and byte counters, fsync
// latency histogram, recovery time) through internal/obs.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cobra/internal/obs"
)

// WAL metrics, registered in the Default obs registry.
var (
	cRecords   = obs.C("wal.records")
	cBytes     = obs.C("wal.bytes")
	cFsyncs    = obs.C("wal.fsyncs")
	cRotations = obs.C("wal.rotations")
	hFsync     = obs.H("wal.fsync")
)

// SyncPolicy controls when appended records are fsynced to disk.
type SyncPolicy int

// Sync policies, from safest to fastest.
const (
	// SyncAlways fsyncs before an append returns; concurrent appenders
	// share one fsync (group commit). No acknowledged record is ever
	// lost.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes and fsyncs on a background timer. A crash
	// loses at most the last flush interval of records.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS writes back at its
	// leisure. Fastest, weakest.
	SyncNone
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and
// "none" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// LogOptions configures a Log.
type LogOptions struct {
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background flush period under SyncInterval;
	// 0 defaults to 50ms.
	SyncInterval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size; 0 defaults to 64 MiB.
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold used when
// LogOptions.SegmentBytes is zero.
const DefaultSegmentBytes = 64 << 20

// defaultSyncInterval backs LogOptions.SyncInterval.
const defaultSyncInterval = 50 * time.Millisecond

// Log is a segmented, checksummed write-ahead log. Records are opaque
// byte payloads framed as
//
//	u32 length | u32 CRC32(payload) | payload
//
// in little endian, appended to files named wal-<seq>.log. Log is safe
// for concurrent use.
type Log struct {
	dir  string
	opts LogOptions

	mu      sync.Mutex // guards file state and the buffered tail
	f       *os.File
	seq     uint64 // sequence number of the open segment
	size    int64  // bytes written to the open segment
	written uint64 // LSN (count) of records appended
	closed  bool

	syncMu  sync.Mutex // serializes group commit
	synced  uint64     // LSN covered by the last fsync
	syncErr error      // sticky fsync failure

	stop chan struct{}
	done chan struct{}
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%08d.log", seq)
}

// parseSegmentName extracts the sequence number from a segment file
// name, reporting ok=false for foreign files.
func parseSegmentName(name string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Segments lists the log segments in dir in ascending sequence order.
func Segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenLog opens (creating if needed) a log directory for appending. A
// fresh segment is always started — one past the highest existing
// sequence — so a possibly-torn tail from a previous crash is never
// appended to.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	l := &Log{dir: dir, opts: opts, seq: next - 1}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// openSegmentLocked closes the current segment file (if any) and opens
// segment seq. Callers hold l.mu (or own the log exclusively).
func (l *Log) openSegmentLocked(seq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.seq = seq
	l.size = 0
	return syncDir(l.dir)
}

// Append adds one record to the log, rotating segments as needed, and
// syncs it according to the log's policy. Under SyncAlways it does not
// return until the record is durable (sharing fsyncs with concurrent
// appenders); under SyncInterval and SyncNone it returns once the
// record is handed to the OS.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return os.ErrClosed
	}
	frame := int64(8 + len(payload))
	if l.size > 0 && l.size+frame > l.opts.SegmentBytes {
		if err := l.openSegmentLocked(l.seq + 1); err != nil {
			l.mu.Unlock()
			return err
		}
		cRotations.Inc()
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(payload); err != nil {
		l.mu.Unlock()
		return err
	}
	l.size += frame
	l.written++
	lsn := l.written
	l.mu.Unlock()

	cRecords.Inc()
	cBytes.Add(frame)
	if l.opts.Sync == SyncAlways {
		return l.syncTo(lsn)
	}
	return nil
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.written
	l.mu.Unlock()
	return l.syncTo(lsn)
}

// syncTo implements group commit: a caller whose record was already
// covered by a concurrent fsync returns without syncing again.
func (l *Log) syncTo(lsn uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.synced >= lsn {
		return nil
	}
	l.mu.Lock()
	target := l.written
	f := l.f
	closed := l.closed
	l.mu.Unlock()
	if closed || f == nil {
		return os.ErrClosed
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	hFsync.Observe(time.Since(start))
	cFsyncs.Inc()
	l.synced = target
	return nil
}

// flushLoop services SyncInterval.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Rotate seals the current segment (flush + fsync + close) and starts
// a new one, returning the sealed segment's sequence number. Records
// appended after Rotate returns land only in the new segment.
func (l *Log) Rotate() (sealed uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, os.ErrClosed
	}
	sealed = l.seq
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return 0, err
	}
	cRotations.Inc()
	return sealed, nil
}

// RemoveThrough deletes every segment with sequence number <= seq.
// Used after a checkpoint has made those segments redundant.
func (l *Log) RemoveThrough(seq uint64) error {
	seqs, err := Segments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s <= seq {
			if err := os.Remove(filepath.Join(l.dir, segmentName(s))); err != nil {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

// Close flushes, fsyncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	// Final sync before marking closed so buffered records survive.
	err := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayStats reports what a replay pass saw.
type ReplayStats struct {
	// Records is the number of intact records delivered.
	Records int
	// Torn reports whether replay stopped early at a torn or corrupt
	// record (the expected signature of a crash mid-append).
	Torn bool
	// TornSeq and TornOffset locate the torn record when Torn is set:
	// the segment it sits in and the byte offset of the last intact
	// record boundary before it. Repair truncates the segment there.
	TornSeq    uint64
	TornOffset int64
}

// Replay reads the segments of dir with sequence number >= minSeq in
// order, invoking fn for each intact record. Replay stops silently at
// the first torn or checksum-failing record — everything before it is
// a durable prefix, everything at and after it was mid-write when the
// process died. A non-nil error from fn aborts replay.
func Replay(dir string, minSeq uint64, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	seqs, err := Segments(dir)
	if err != nil {
		return st, err
	}
	for _, seq := range seqs {
		if seq < minSeq {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return st, err
		}
		off := 0
		for off < len(data) {
			bad := len(data)-off < 8
			var n int
			if !bad {
				n = int(binary.LittleEndian.Uint32(data[off : off+4]))
				sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
				bad = n < 0 || off+8+n > len(data) ||
					crc32.ChecksumIEEE(data[off+8:off+8+n]) != sum
			}
			if bad {
				st.Torn = true
				st.TornSeq = seq
				st.TornOffset = int64(off)
				return st, nil
			}
			if err := fn(data[off+8 : off+8+n]); err != nil {
				return st, err
			}
			st.Records++
			off += 8 + n
		}
	}
	return st, nil
}

// Repair makes the on-disk log match what Replay delivered after a
// torn record was found: the torn segment is truncated back to its
// last intact record boundary and any later segments — which would
// otherwise hide behind the tear and silently vanish from future
// replays — are deleted. Call it after Replay and before appending new
// records.
func Repair(dir string, st ReplayStats) error {
	if !st.Torn {
		return nil
	}
	if err := os.Truncate(filepath.Join(dir, segmentName(st.TornSeq)), st.TornOffset); err != nil {
		return err
	}
	seqs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s > st.TornSeq {
			if err := os.Remove(filepath.Join(dir, segmentName(s))); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
