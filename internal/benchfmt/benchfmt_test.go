package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func sample() *File {
	return &File{
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 4,
		Results: []Result{
			{Name: "BATJoin", Iterations: 100, NsPerOp: 1000, AllocsPerOp: 5, BytesPerOp: 640},
			{Name: "BATUselect", Iterations: 200, NsPerOp: 500, AllocsPerOp: 2, BytesPerOp: 128},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GOMAXPROCS != 4 || len(got.Results) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	r, ok := got.Find("BATJoin")
	if !ok || r.NsPerOp != 1000 {
		t.Fatalf("Find(BATJoin) = %+v, %v", r, ok)
	}
	if _, ok := got.Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompare(t *testing.T) {
	base := sample()
	cur := &File{Results: []Result{
		{Name: "BATJoin", NsPerOp: 1240}, // +24%: within a 25% threshold
		{Name: "BATNew", NsPerOp: 1},     // new op: ignored
	}}
	deltas := Compare(base, cur, 0.25)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
	// Sorted by name: BATJoin then BATUselect.
	if deltas[0].Name != "BATJoin" || deltas[0].Regressed {
		t.Fatalf("BATJoin delta = %+v", deltas[0])
	}
	if deltas[1].Name != "BATUselect" || !deltas[1].Missing || !deltas[1].Regressed {
		t.Fatalf("missing op delta = %+v", deltas[1])
	}

	// A 26% slowdown breaches the 25% gate.
	cur = &File{Results: []Result{
		{Name: "BATJoin", NsPerOp: 1260},
		{Name: "BATUselect", NsPerOp: 500},
	}}
	deltas = Compare(base, cur, 0.25)
	if !deltas[0].Regressed {
		t.Fatalf("26%% slowdown not flagged: %+v", deltas[0])
	}
	if deltas[1].Regressed {
		t.Fatalf("unchanged op flagged: %+v", deltas[1])
	}
}

func TestCompareWidthChange(t *testing.T) {
	base := &File{Results: []Result{
		{Name: "ParallelSelect1M", NsPerOp: 1000, Width: 4},
		{Name: "Select1M/w8", NsPerOp: 800, Width: 8},
	}}
	// Faster, but measured at a different pool width: the ratio would
	// compare incomparable runs, so the gate must fail the op.
	cur := &File{Results: []Result{
		{Name: "ParallelSelect1M", NsPerOp: 600, Width: 8},
		{Name: "Select1M/w8", NsPerOp: 810, Width: 8},
	}}
	deltas := Compare(base, cur, 0.25)
	if !deltas[0].WidthChanged || !deltas[0].Regressed {
		t.Fatalf("width change not flagged: %+v", deltas[0])
	}
	if deltas[0].BaseWidth != 4 || deltas[0].CurWidth != 8 {
		t.Fatalf("widths not recorded: %+v", deltas[0])
	}
	if deltas[1].WidthChanged || deltas[1].Regressed {
		t.Fatalf("same-width op flagged: %+v", deltas[1])
	}
}

func TestResultWidthRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := &File{Results: []Result{{Name: "Select1M/w4", NsPerOp: 1, Width: 4}}}
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := got.Find("Select1M/w4"); !ok || r.Width != 4 {
		t.Fatalf("width lost in round trip: %+v", got.Results)
	}
}
