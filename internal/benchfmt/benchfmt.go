// Package benchfmt defines the machine-readable microbenchmark result
// format shared by cobra-bench (which writes it) and benchdiff (which
// compares a PR's results against the committed baseline in CI). A
// benchmark file records the machine shape alongside the per-operation
// results so regressions are judged against numbers from comparable
// hardware.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmarked operation's measurement.
type Result struct {
	// Name identifies the operation, e.g. "ParallelSelect1M".
	Name string `json:"name"`
	// Iterations is the b.N the measurement settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Width is the kernel pool width the operation was pinned to, when
	// the harness pinned one (0 = unpinned). The file-level GOMAXPROCS
	// records only the scheduler width of the process; a parallel
	// operator benchmarked at pool width 8 on a GOMAXPROCS=1 machine is
	// meaningless to compare against a true 8-core run, and before this
	// field existed such runs were indistinguishable in the JSON.
	Width int `json:"width,omitempty"`
}

// File is one benchmark run: the machine shape plus every operation
// measured.
type File struct {
	// GOOS and GOARCH describe the platform the run executed on.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS is the scheduler width of the run; parallel-operator
	// numbers are only comparable at similar widths.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Results holds one entry per benchmarked operation.
	Results []Result `json:"results"`
}

// Find returns the named result and whether it is present.
func (f *File) Find(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Write marshals the file as indented JSON at path.
func Write(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read parses a benchmark file from path.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	return &f, nil
}

// Delta is the comparison of one operation between a baseline run and
// a current run.
type Delta struct {
	// Name identifies the operation.
	Name string
	// BaseNs and CurNs are ns/op in the baseline and current runs.
	BaseNs float64
	CurNs  float64
	// Ratio is CurNs/BaseNs (1.0 = unchanged; 1.30 = 30% slower).
	Ratio float64
	// Missing is true when the operation exists in the baseline but was
	// not measured in the current run — treated as a regression so a
	// tracked op can't silently drop out of the gate.
	Missing bool
	// BadBaseline is true when the baseline recorded a non-positive
	// ns/op for the operation. Such an entry cannot anchor a ratio, so
	// the op is failed loudly instead of letting Ratio=0 wave any
	// slowdown through.
	BadBaseline bool
	// WidthChanged is true when the two runs pinned the op to different
	// kernel pool widths — the ns/op ratio would compare incomparable
	// configurations, so the op fails instead.
	WidthChanged bool
	// BaseWidth and CurWidth are the pinned pool widths (0 = unpinned).
	BaseWidth int
	CurWidth  int
	// BaseAllocs and CurAllocs are allocs/op in the two runs, and
	// AllocRatio is CurAllocs/BaseAllocs (0 when the baseline recorded
	// no allocations — a zero-alloc op cannot anchor a ratio, so growth
	// from zero is flagged through AllocsGrewFromZero instead).
	BaseAllocs int64
	CurAllocs  int64
	AllocRatio float64
	// AllocsGrewFromZero is true when the baseline was allocation-free
	// but the current run allocates.
	AllocsGrewFromZero bool
	// Regressed is true when the op breaches the comparison threshold.
	Regressed bool
}

// Compare evaluates the current run against the baseline. Every
// baseline operation yields a Delta, ordered by name; an op regresses
// when its ns/op grows by more than threshold (0.25 = fail above +25%),
// disappears from the current run, has a non-positive baseline
// ns/op (a corrupt entry that cannot anchor a ratio), or was pinned to
// a different kernel pool width than the baseline (the two numbers
// measure incomparable configurations). Operations only present in
// the current run are ignored — new benchmarks don't need a baseline
// to land.
func Compare(baseline, current *File, threshold float64) []Delta {
	deltas := make([]Delta, 0, len(baseline.Results))
	for _, base := range baseline.Results {
		d := Delta{Name: base.Name, BaseNs: base.NsPerOp, BaseWidth: base.Width}
		cur, ok := current.Find(base.Name)
		if !ok {
			d.Missing = true
			d.Regressed = true
			deltas = append(deltas, d)
			continue
		}
		d.CurNs = cur.NsPerOp
		d.CurWidth = cur.Width
		if base.Width != cur.Width {
			d.WidthChanged = true
			d.Regressed = true
			deltas = append(deltas, d)
			continue
		}
		d.BaseAllocs, d.CurAllocs = base.AllocsPerOp, cur.AllocsPerOp
		if base.AllocsPerOp > 0 {
			d.AllocRatio = float64(cur.AllocsPerOp) / float64(base.AllocsPerOp)
		} else if cur.AllocsPerOp > 0 {
			d.AllocsGrewFromZero = true
		}
		if base.NsPerOp > 0 {
			d.Ratio = cur.NsPerOp / base.NsPerOp
			d.Regressed = d.Ratio > 1+threshold
		} else {
			d.BadBaseline = true
			d.Regressed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}
