package vtext

import (
	"math/rand"
	"testing"

	"cobra/internal/video"
)

func TestGlyphMask(t *testing.T) {
	a := GlyphMask('A')
	if !a[3][0] || !a[3][4] {
		t.Fatal("A crossbar missing")
	}
	lower := GlyphMask('a')
	if lower != a {
		t.Fatal("lower-case should map to upper-case glyph")
	}
	if GlyphMask('~') != GlyphMask(' ') {
		t.Fatal("unsupported rune should render as space")
	}
}

func TestRenderWordDimensions(t *testing.T) {
	m := RenderWord("AB", 1)
	wantW := GlyphW*2 + charSpacing
	if m.W != wantW || m.H != GlyphH {
		t.Fatalf("dims = %dx%d, want %dx%d", m.W, m.H, wantW, GlyphH)
	}
	m2 := RenderWord("AB", 3)
	if m2.W != wantW*3 || m2.H != GlyphH*3 {
		t.Fatalf("scaled dims = %dx%d", m2.W, m2.H)
	}
	if m2.InkCount() != m.InkCount()*9 {
		t.Fatalf("scaled ink %d != 9x base %d", m2.InkCount(), m.InkCount())
	}
	if RenderWord("", 1).W != 1 {
		t.Fatal("empty word should render a minimal mask")
	}
}

// drawCaption renders a shaded caption band with the given text onto a
// frame, imitating the broadcast overlay.
func drawCaption(f *video.Frame, text string, scale int, rng *rand.Rand) {
	y0, y1 := BandBounds(f.H)
	// Shaded backdrop.
	for y := y0; y < y1; y++ {
		for x := 0; x < f.W; x++ {
			v := byte(40 + rng.Intn(20))
			f.Set(x, y, v, v, v+10)
		}
	}
	m := RenderWord(text, scale)
	ox := (f.W - m.W) / 2
	oy := y0 + (y1-y0-m.H)/2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) {
				f.Set(ox+x, oy+y, 240, 240, 100) // yellow caption ink
			}
		}
	}
}

func sceneFrame(w, h int, rng *rand.Rand) *video.Frame {
	f := video.NewFrame(w, h)
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i] = byte(90 + rng.Intn(60))
		f.Pix[i+1] = byte(110 + rng.Intn(60))
		f.Pix[i+2] = byte(90 + rng.Intn(60))
	}
	return f
}

func TestAnalyzeBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	withText := sceneFrame(384, 288, rng)
	drawCaption(withText, "SCHUMACHER", 3, rng)
	sr := AnalyzeBand(withText)
	if !sr.Present {
		t.Fatalf("caption band not detected: %+v", sr)
	}
	plain := sceneFrame(384, 288, rng)
	if got := AnalyzeBand(plain); got.Present {
		t.Fatalf("false positive on plain frame: %+v", got)
	}
	// A fully bright band is not text.
	bright := sceneFrame(384, 288, rng)
	y0, y1 := BandBounds(bright.H)
	bright.FillRect(0, y0, bright.W, y1, 250, 250, 250)
	if got := AnalyzeBand(bright); got.Present {
		t.Fatalf("false positive on bright bar: %+v", got)
	}
}

func TestDetectorDurationCriterion(t *testing.T) {
	d := NewDetector(5)
	feed := func(present bool, n int) {
		for i := 0; i < n; i++ {
			d.Feed(ShadedRegion{Present: present})
		}
	}
	feed(false, 10)
	feed(true, 3) // too short: skipped
	feed(false, 5)
	feed(true, 8) // long enough
	feed(false, 5)
	d.Flush()
	if len(d.Segments) != 1 {
		t.Fatalf("segments = %v, want 1", d.Segments)
	}
	if d.Segments[0] != [2]int{18, 26} {
		t.Fatalf("segment = %v, want [18, 26)", d.Segments[0])
	}
}

func TestDetectorFlushOpenSegment(t *testing.T) {
	d := NewDetector(3)
	for i := 0; i < 4; i++ {
		d.Feed(ShadedRegion{Present: true})
	}
	d.Flush()
	if len(d.Segments) != 1 || d.Segments[0] != [2]int{0, 4} {
		t.Fatalf("segments = %v", d.Segments)
	}
}

func TestMinFilterSuppressesFlicker(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frames := make([]*video.Frame, 5)
	for i := range frames {
		f := video.NewFrame(64, 64)
		// Band with stable text pixel at (10, y) and flickering noise.
		y0, _ := BandBounds(f.H)
		for y := y0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				if rng.Intn(5) == 0 {
					f.Set(x, y, 255, 255, 255) // flicker
				} else {
					f.Set(x, y, 30, 30, 30)
				}
			}
		}
		f.Set(10, y0+3, 255, 255, 255) // stable text pixel
		frames[i] = f
	}
	g := MinFilterBand(frames)
	if g.At(10, 3) < 200 {
		t.Fatalf("stable text pixel filtered out: %d", g.At(10, 3))
	}
	flickerSurvivors := 0
	for i, v := range g.Pix {
		if v > 200 && i != 3*g.W+10 {
			flickerSurvivors++
		}
	}
	if flickerSurvivors > len(g.Pix)/100 {
		t.Fatalf("%d flicker pixels survived min filter", flickerSurvivors)
	}
}

func TestInterpolate4x(t *testing.T) {
	g := &video.Gray{W: 4, H: 4, Pix: make([]byte, 16)}
	g.Pix[5] = 200
	out := Interpolate4x(g)
	if out.W != 16 || out.H != 16 {
		t.Fatalf("dims = %dx%d", out.W, out.H)
	}
	if out.At(5, 5) < 100 {
		t.Fatalf("magnified peak = %d", out.At(5, 5))
	}
}

func TestBinarize(t *testing.T) {
	g := &video.Gray{W: 2, H: 1, Pix: []byte{100, 220}}
	m := Binarize(g, 180)
	if m.At(0, 0) || !m.At(1, 0) {
		t.Fatal("binarize wrong")
	}
}

func TestRecognizeRenderedWords(t *testing.T) {
	lex := []string{"SCHUMACHER", "BARRICHELLO", "HAKKINEN", "PIT", "STOP", "WINNER", "LAP"}
	r := NewRecognizer(lex, 0.8)
	for _, w := range lex {
		band := RenderWord(w, 4)
		hits := r.RecognizeBand(band)
		if len(hits) != 1 {
			t.Fatalf("%s: hits = %v", w, hits)
		}
		if hits[0].Word != w {
			t.Fatalf("%s recognized as %s (score %v)", w, hits[0].Word, hits[0].Score)
		}
	}
}

func TestRecognizeMultipleWords(t *testing.T) {
	r := NewRecognizer([]string{"PIT", "STOP", "SCHUMACHER"}, 0.8)
	band := RenderWord("PIT STOP", 4)
	hits := r.RecognizeBand(band)
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want PIT and STOP", hits)
	}
	if hits[0].Word != "PIT" || hits[1].Word != "STOP" {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].X >= hits[1].X {
		t.Fatal("word order not preserved")
	}
}

func TestRecognizeRejectsUnknownWord(t *testing.T) {
	r := NewRecognizer([]string{"WINNER", "HAKKINEN"}, 0.8)
	band := RenderWord("XYZZY", 4)
	hits := r.RecognizeBand(band)
	if len(hits) != 0 {
		t.Fatalf("unknown word matched: %v", hits)
	}
}

func TestRecognizeWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRecognizer([]string{"SCHUMACHER", "BARRICHELLO", "MONTOYA", "PIT", "STOP"}, 0.75)
	band := RenderWord("MONTOYA", 4)
	// Flip 3% of cells.
	for i := range band.Pix {
		if rng.Float64() < 0.03 {
			band.Pix[i] = !band.Pix[i]
		}
	}
	hits := r.RecognizeBand(band)
	if len(hits) != 1 || hits[0].Word != "MONTOYA" {
		t.Fatalf("noisy recognition = %v", hits)
	}
}

func TestEndToEndCaptionPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Render the same caption over several frames with band noise,
	// then run the full chain: min filter -> interpolate -> binarize ->
	// recognize.
	frames := make([]*video.Frame, 6)
	for i := range frames {
		f := sceneFrame(384, 288, rng)
		drawCaption(f, "SCHUMACHER", 3, rng)
		frames[i] = f
	}
	for _, f := range frames {
		if !AnalyzeBand(f).Present {
			t.Fatal("caption band not detected in pipeline frame")
		}
	}
	g := MinFilterBand(frames)
	g = Interpolate4x(g)
	band := Binarize(g, 170)
	r := NewRecognizer([]string{"SCHUMACHER", "BARRICHELLO", "HAKKINEN", "COULTHARD", "PIT", "STOP"}, 0.7)
	hits := r.RecognizeBand(band)
	if len(hits) != 1 || hits[0].Word != "SCHUMACHER" {
		t.Fatalf("pipeline hits = %v", hits)
	}
}

func TestEstimateCharCount(t *testing.T) {
	m := RenderWord("ABCDE", 3)
	if got := estimateCharCount(m.W, m.H); got < 4 || got > 6 {
		t.Fatalf("estimate = %d, want ~5", got)
	}
	if estimateCharCount(10, 0) != 0 {
		t.Fatal("zero height should give 0")
	}
}

// Property: every supported A-Z word renders and recognizes back to
// itself at any scale 2-5 against a small decoy lexicon.
func TestRenderRecognizeRoundTripProperty(t *testing.T) {
	words := []string{"GRAVEL", "ENGINE", "WINNER", "BOX", "SLICK", "DRY"}
	r := NewRecognizer(append(words, "DECOY", "ANOTHER"), 0.8)
	for _, w := range words {
		for scale := 2; scale <= 5; scale++ {
			band := RenderWord(w, scale)
			hits := r.RecognizeBand(band)
			if len(hits) != 1 || hits[0].Word != w {
				t.Fatalf("%s at scale %d -> %v", w, scale, hits)
			}
		}
	}
}
