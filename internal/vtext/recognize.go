package vtext

import (
	"sort"
	"strings"
)

// WordHit is one recognized word in a caption band.
type WordHit struct {
	// Word is the matched lexicon entry (upper case).
	Word string
	// Score is the pixel-agreement metric in [0, 1].
	Score float64
	// X is the left edge of the word region in band pixels.
	X int
}

// Recognizer matches caption word regions against reference patterns
// rendered from a lexicon. Patterns are bucketed by character count so
// matching only compares words of similar length (§5.4).
type Recognizer struct {
	// Threshold is the minimum pixel-agreement score (paper: "a
	// reference pattern with the largest metric above this threshold is
	// selected").
	Threshold float64
	lexicon   []string
}

// NewRecognizer builds a recognizer for the given word list (driver
// names and informative words such as PIT STOP or FINAL LAP).
func NewRecognizer(lexicon []string, threshold float64) *Recognizer {
	lx := make([]string, 0, len(lexicon))
	seen := map[string]bool{}
	for _, w := range lexicon {
		u := strings.ToUpper(strings.TrimSpace(w))
		if u != "" && !seen[u] {
			seen[u] = true
			lx = append(lx, u)
		}
	}
	sort.Strings(lx)
	return &Recognizer{Threshold: threshold, lexicon: lx}
}

// Lexicon returns the recognizer's word list.
func (r *Recognizer) Lexicon() []string { return append([]string(nil), r.lexicon...) }

// segment is a [lo, hi) interval.
type segment struct{ lo, hi int }

// columnRuns returns maximal runs of columns whose ink count exceeds
// zero, separated by gaps of at least minGap empty columns — the
// vertical-projection character/word segmentation.
func columnRuns(m *Mask, minGap int) []segment {
	ink := make([]int, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) {
				ink[x]++
			}
		}
	}
	var runs []segment
	inRun := false
	start := 0
	gap := 0
	for x := 0; x <= m.W; x++ {
		filled := x < m.W && ink[x] > 0
		switch {
		case filled && !inRun:
			inRun = true
			start = x
			gap = 0
		case !filled && inRun:
			gap++
			if gap >= minGap || x == m.W {
				runs = append(runs, segment{start, x - gap + 1})
				inRun = false
			}
		case filled && inRun:
			gap = 0
		}
	}
	if inRun {
		runs = append(runs, segment{start, m.W})
	}
	return runs
}

// rowBounds returns the tight [lo, hi) vertical ink bounds of the mask
// within columns [x0, x1) — the horizontal projection used to refine
// character height (the paper's "double vertical projection" refines
// characters of different heights).
func rowBounds(m *Mask, x0, x1 int) (int, int) {
	lo, hi := m.H, 0
	for y := 0; y < m.H; y++ {
		for x := x0; x < x1; x++ {
			if m.At(x, y) {
				if y < lo {
					lo = y
				}
				if y+1 > hi {
					hi = y + 1
				}
				break
			}
		}
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// extract crops the mask to [x0,x1)x[y0,y1).
func extract(m *Mask, x0, y0, x1, y1 int) *Mask {
	out := NewMask(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			out.Set(x-x0, y-y0, m.At(x, y))
		}
	}
	return out
}

// resizeMask box-resizes a mask to (w, h): each target cell is set when
// at least half of its source box is ink, which preserves stroke shape
// far better than nearest-neighbor sampling when shrinking.
func resizeMask(m *Mask, w, h int) *Mask {
	out := NewMask(w, h)
	for y := 0; y < h; y++ {
		sy0 := y * m.H / h
		sy1 := (y + 1) * m.H / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * m.W / w
			sx1 := (x + 1) * m.W / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			ink, n := 0, 0
			for sy := sy0; sy < sy1 && sy < m.H; sy++ {
				for sx := sx0; sx < sx1 && sx < m.W; sx++ {
					if m.At(sx, sy) {
						ink++
					}
					n++
				}
			}
			out.Set(x, y, n > 0 && 2*ink >= n)
		}
	}
	return out
}

// agreement is the pixel-difference metric: the ink-overlap F1 of the
// two equal-size masks. Overlap scoring is insensitive to the large
// empty background that plain cell agreement would reward.
func agreement(a, b *Mask) float64 {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return 0
	}
	both, inkA, inkB := 0, 0, 0
	for i := range a.Pix {
		if a.Pix[i] {
			inkA++
		}
		if b.Pix[i] {
			inkB++
		}
		if a.Pix[i] && b.Pix[i] {
			both++
		}
	}
	if inkA+inkB == 0 {
		return 0
	}
	return 2 * float64(both) / float64(inkA+inkB)
}

// estimateCharCount estimates how many characters a word region of the
// given width and height spans under the caption font metrics.
func estimateCharCount(w, h int) int {
	if h <= 0 {
		return 0
	}
	scale := float64(h) / float64(GlyphH)
	per := scale * float64(GlyphW+charSpacing)
	n := int(float64(w)/per + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// RecognizeBand segments the binarized caption band into word regions
// (characters grouped by pixel distance) and matches each region
// against reference patterns of similar length. Gap geometry scales
// with the region height.
func (r *Recognizer) RecognizeBand(band *Mask) []WordHit {
	if band.W == 0 || band.H == 0 {
		return nil
	}
	// Estimate glyph scale from overall ink height to derive the
	// character/word gap threshold.
	y0, y1 := rowBounds(band, 0, band.W)
	if y1 <= y0 {
		return nil
	}
	scale := (y1 - y0 + GlyphH/2) / GlyphH
	if scale < 1 {
		scale = 1
	}
	// Words are separated by gaps clearly larger than the intra-word
	// character spacing.
	minWordGap := scale * (charSpacing + wordSpacing) / 2
	if minWordGap < 2 {
		minWordGap = 2
	}
	var hits []WordHit
	for _, run := range columnRuns(band, minWordGap) {
		ry0, ry1 := rowBounds(band, run.lo, run.hi)
		if ry1 <= ry0 {
			continue
		}
		region := extract(band, run.lo, ry0, run.hi, ry1)
		if hit, ok := r.matchRegion(region); ok {
			hit.X = run.lo
			hits = append(hits, hit)
		}
	}
	return hits
}

// matchRegion finds the best lexicon word for one region.
func (r *Recognizer) matchRegion(region *Mask) (WordHit, bool) {
	chars := estimateCharCount(region.W, region.H)
	best := WordHit{}
	for _, w := range r.lexicon {
		// Length bucketing: only compare words within ±2 characters.
		d := len(w) - chars
		if d < -2 || d > 2 {
			continue
		}
		ref := RenderWord(w, 2)
		ref = trimMask(ref)
		cand := resizeMask(region, ref.W, ref.H)
		score := agreement(cand, ref)
		if score > best.Score {
			best = WordHit{Word: w, Score: score}
		}
	}
	if best.Score >= r.Threshold {
		return best, true
	}
	return WordHit{}, false
}

// trimMask crops a mask to its tight ink bounding box.
func trimMask(m *Mask) *Mask {
	y0, y1 := rowBounds(m, 0, m.W)
	if y1 <= y0 {
		return m
	}
	x0, x1 := m.W, 0
	for x := 0; x < m.W; x++ {
		for y := y0; y < y1; y++ {
			if m.At(x, y) {
				if x < x0 {
					x0 = x
				}
				if x+1 > x1 {
					x1 = x + 1
				}
				break
			}
		}
	}
	if x1 <= x0 {
		return m
	}
	return extract(m, x0, y0, x1, y1)
}
