package vtext

import (
	"cobra/internal/video"
)

// BandFraction is the fraction of the frame height occupied by the
// caption band at the bottom of the picture: the paper exploits the
// domain property that superimposed text lives there.
const BandFraction = 0.18

// BandBounds returns the caption band [y0, y1) for a frame of height h.
func BandBounds(h int) (y0, y1 int) {
	y0 = h - int(float64(h)*BandFraction)
	return y0, h
}

// ShadedRegion describes the detection measurements of one frame's
// caption band.
type ShadedRegion struct {
	// Present reports whether a shaded (darkened) band with bright
	// character pixels was found.
	Present bool
	// MeanLuma is the band's mean luminance.
	MeanLuma float64
	// BrightCount is the number of bright (character-candidate) pixels.
	BrightCount int
	// BrightVariance is the column variance of bright pixels, high when
	// text (rather than a bright stripe) is present.
	BrightVariance float64
}

// shadedMaxLuma is the maximum mean luminance of a shaded backdrop;
// brightMinLuma is the minimum luminance of a character pixel.
const (
	shadedMaxLuma = 110
	brightMinLuma = 180
)

// AnalyzeBand measures the caption band of one frame (detection step 1:
// "analyze if the shaded region is present in the bottom part").
func AnalyzeBand(f *video.Frame) ShadedRegion {
	y0, y1 := BandBounds(f.H)
	var sum float64
	bright := 0
	colHas := make([]int, f.W)
	n := 0
	for y := y0; y < y1; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			luma := (299*int(r) + 587*int(g) + 114*int(b)) / 1000
			sum += float64(luma)
			n++
			if luma >= brightMinLuma {
				bright++
				colHas[x]++
			}
		}
	}
	mean := sum / float64(n)
	// Column variance of bright-pixel counts: text alternates ink and
	// gap columns, a uniform bright bar does not.
	var mu float64
	for _, c := range colHas {
		mu += float64(c)
	}
	mu /= float64(len(colHas))
	var varsum float64
	for _, c := range colHas {
		d := float64(c) - mu
		varsum += d * d
	}
	variance := varsum / float64(len(colHas))

	present := mean < shadedMaxLuma &&
		bright > (y1-y0)*f.W/100 && // enough character pixels
		bright < (y1-y0)*f.W/2 && // not a washed-out band
		variance > 0.5
	return ShadedRegion{
		Present:        present,
		MeanLuma:       mean,
		BrightCount:    bright,
		BrightVariance: variance,
	}
}

// Detector runs the two-pass text detection over a frame stream:
// consecutive shaded-band frames shorter than MinFrames are skipped
// (the duration criterion), longer runs become text segments.
type Detector struct {
	// MinFrames is the minimum run length (the paper skips "all the
	// short segments that do not satisfy the duration criteria").
	MinFrames int

	run      int
	frame    int
	start    int
	Segments [][2]int // [start, end) frame intervals containing text
}

// NewDetector returns a detector requiring runs of at least minFrames.
func NewDetector(minFrames int) *Detector {
	if minFrames < 1 {
		minFrames = 1
	}
	return &Detector{MinFrames: minFrames}
}

// Feed processes the next frame's band measurement; it returns true
// when a completed text segment is recorded.
func (d *Detector) Feed(sr ShadedRegion) bool {
	done := false
	if sr.Present {
		if d.run == 0 {
			d.start = d.frame
		}
		d.run++
	} else {
		if d.run >= d.MinFrames {
			d.Segments = append(d.Segments, [2]int{d.start, d.frame})
			done = true
		}
		d.run = 0
	}
	d.frame++
	return done
}

// Flush closes a segment still open at stream end.
func (d *Detector) Flush() {
	if d.run >= d.MinFrames {
		d.Segments = append(d.Segments, [2]int{d.start, d.frame})
	}
	d.run = 0
}

// MinFilterBand extracts the caption band from each frame and computes
// the pixel-wise minimum luminance across them — the refinement step
// that suppresses flickering background while keeping stable text.
func MinFilterBand(frames []*video.Frame) *video.Gray {
	if len(frames) == 0 {
		return &video.Gray{W: 0, H: 0}
	}
	y0, y1 := BandBounds(frames[0].H)
	w, h := frames[0].W, y1-y0
	out := &video.Gray{W: w, H: h, Pix: make([]byte, w*h)}
	for i := range out.Pix {
		out.Pix[i] = 255
	}
	for _, f := range frames {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				r, g, b := f.At(x, y0+y)
				luma := byte((299*int(r) + 587*int(g) + 114*int(b)) / 1000)
				if luma < out.Pix[y*w+x] {
					out.Pix[y*w+x] = luma
				}
			}
		}
	}
	return out
}

// Interpolate4x magnifies the image four times in both directions with
// bilinear interpolation, the paper's enlargement step that makes
// characters "clearer and cleaner".
func Interpolate4x(g *video.Gray) *video.Gray {
	const k = 4
	w, h := g.W*k, g.H*k
	out := &video.Gray{W: w, H: h, Pix: make([]byte, w*h)}
	for y := 0; y < h; y++ {
		fy := float64(y) / k
		y0 := int(fy)
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) / k
			x0 := int(fx)
			x1 := x0 + 1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			wx := fx - float64(x0)
			v := (1-wy)*((1-wx)*float64(g.At(x0, y0))+wx*float64(g.At(x1, y0))) +
				wy*((1-wx)*float64(g.At(x0, y1))+wx*float64(g.At(x1, y1)))
			out.Pix[y*w+x] = byte(v)
		}
	}
	return out
}

// Binarize thresholds the refined band: bright pixels become ink on a
// black background ("we marked characters as a white space on the
// black background").
func Binarize(g *video.Gray, threshold byte) *Mask {
	m := NewMask(g.W, g.H)
	for i, v := range g.Pix {
		m.Pix[i] = v >= threshold
	}
	return m
}
