// Package vtext implements the paper's superimposed-text processing
// chain (§5.4): detection of the shaded caption band, duration
// filtering, refinement (minimum-intensity filtering over consecutive
// frames and 4x interpolation), projection-based character
// segmentation, word-region grouping and length-bucketed pattern
// matching against reference word patterns.
//
// The 5x7 bitmap font below plays the role of the broadcast caption
// typeface: the synthesizer renders captions with it and the
// recognizer matches against reference patterns rendered from the same
// glyphs — exactly the paper's setup, where reference patterns were
// extracted from the known, uniform set of superimposed words.
package vtext

import "strings"

// GlyphW and GlyphH are the base glyph dimensions.
const (
	GlyphW = 5
	GlyphH = 7
)

// font maps each supported rune to 7 rows of 5 cells ('#' = ink).
var font = map[rune][GlyphH]string{
	'A': {".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"},
	'B': {"####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."},
	'C': {".###.", "#...#", "#....", "#....", "#....", "#...#", ".###."},
	'D': {"####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."},
	'E': {"#####", "#....", "#....", "####.", "#....", "#....", "#####"},
	'F': {"#####", "#....", "#....", "####.", "#....", "#....", "#...."},
	'G': {".###.", "#...#", "#....", "#.###", "#...#", "#...#", ".###."},
	'H': {"#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"},
	'I': {"#####", "..#..", "..#..", "..#..", "..#..", "..#..", "#####"},
	'J': {"..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."},
	'K': {"#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"},
	'L': {"#....", "#....", "#....", "#....", "#....", "#....", "#####"},
	'M': {"#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"},
	'N': {"#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"},
	'O': {".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."},
	'P': {"####.", "#...#", "#...#", "####.", "#....", "#....", "#...."},
	'Q': {".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"},
	'R': {"####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"},
	'S': {".####", "#....", "#....", ".###.", "....#", "....#", "####."},
	'T': {"#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."},
	'U': {"#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."},
	'V': {"#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."},
	'W': {"#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"},
	'X': {"#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"},
	'Y': {"#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."},
	'Z': {"#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"},
	'0': {".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."},
	'1': {"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", "#####"},
	'2': {".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"},
	'3': {".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."},
	'4': {"...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."},
	'5': {"#####", "#....", "####.", "....#", "....#", "#...#", ".###."},
	'6': {".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."},
	'7': {"#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."},
	'8': {".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."},
	'9': {".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."},
	' ': {".....", ".....", ".....", ".....", ".....", ".....", "....."},
	'.': {".....", ".....", ".....", ".....", ".....", "..#..", "..#.."},
	'-': {".....", ".....", ".....", "#####", ".....", ".....", "....."},
}

// GlyphMask returns the glyph bitmap for r (upper-cased), or the space
// glyph for unsupported runes, as rows of booleans.
func GlyphMask(r rune) [GlyphH][GlyphW]bool {
	rows, ok := font[r]
	if !ok {
		rows, ok = font[toUpper(r)]
	}
	if !ok {
		rows = font[' ']
	}
	var m [GlyphH][GlyphW]bool
	for y := 0; y < GlyphH; y++ {
		for x := 0; x < GlyphW; x++ {
			m[y][x] = rows[y][x] == '#'
		}
	}
	return m
}

func toUpper(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - 'a' + 'A'
	}
	return r
}

// Mask is a binary image: true = ink.
type Mask struct {
	W, H int
	Pix  []bool
}

// NewMask allocates an empty mask.
func NewMask(w, h int) *Mask { return &Mask{W: w, H: h, Pix: make([]bool, w*h)} }

// At returns the cell at (x, y).
func (m *Mask) At(x, y int) bool { return m.Pix[y*m.W+x] }

// Set writes the cell at (x, y).
func (m *Mask) Set(x, y int, v bool) { m.Pix[y*m.W+x] = v }

// InkCount returns the number of set cells.
func (m *Mask) InkCount() int {
	n := 0
	for _, v := range m.Pix {
		if v {
			n++
		}
	}
	return n
}

// charSpacing is the inter-character gap in base-scale cells;
// wordSpacing separates words well beyond it so region grouping can
// tell them apart.
const (
	charSpacing = 1
	wordSpacing = 4
)

// RenderWord rasterizes text at the given integer scale into a mask.
// Unsupported runes render as spaces. The text is upper-cased.
func RenderWord(text string, scale int) *Mask {
	if scale < 1 {
		scale = 1
	}
	text = strings.ToUpper(text)
	w := 0
	for i, r := range text {
		if i > 0 {
			if r == ' ' {
				// space glyph handled below like any glyph
			}
			w += charSpacing
		}
		_ = r
		w += GlyphW
	}
	if w == 0 {
		w = 1
	}
	m := NewMask(w*scale, GlyphH*scale)
	x0 := 0
	for i, r := range text {
		if i > 0 {
			x0 += charSpacing
		}
		g := GlyphMask(r)
		for y := 0; y < GlyphH; y++ {
			for x := 0; x < GlyphW; x++ {
				if !g[y][x] {
					continue
				}
				for dy := 0; dy < scale; dy++ {
					for dx := 0; dx < scale; dx++ {
						m.Set((x0+x)*scale+dx, y*scale+dy, true)
					}
				}
			}
		}
		x0 += GlyphW
	}
	return m
}

// SupportedRunes returns the set of renderable characters.
func SupportedRunes() []rune {
	rs := make([]rune, 0, len(font))
	for r := range font {
		rs = append(rs, r)
	}
	return rs
}
