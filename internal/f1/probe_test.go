package f1

import (
	"fmt"
	"os"
	"testing"

	"cobra/internal/eval"
	"cobra/internal/synth"
)

// TestProbeBN is a diagnostic, enabled with F1_PROBE=1.
func TestProbeBN(t *testing.T) {
	if os.Getenv("F1_PROBE") == "" {
		t.Skip("probe disabled")
	}
	cfg := DefaultExpConfig()
	cfg.RaceDur = 300
	cfg.TrainDur = 150
	cfg.EMIterations = 6
	l := NewLab(cfg)
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		t.Fatal(err)
	}
	obs := f.AudioObservations()
	race := l.Race(synth.GermanGP)
	net, err := l.trainAudioBN(FullyParameterized, f, obs)
	if err != nil {
		t.Fatal(err)
	}
	series, err := bnSeries(net, AudioEvidenceNames, obs, NodeEA)
	if err != nil {
		t.Fatal(err)
	}
	acc := accumulateBN(series)
	meanIn := func(s []float64, lo, hi float64) float64 {
		a, n := 0.0, 0
		for i := int(lo / 0.1); i < int(hi/0.1) && i < len(s); i++ {
			a += s[i]
			n++
		}
		if n == 0 {
			return 0
		}
		return a / float64(n)
	}
	fmt.Printf("BN raw global=%.3f accum global=%.3f\n", meanIn(series, 0, 300), meanIn(acc, 0, 300))
	for _, s := range race.Excitement {
		fmt.Printf("  excite [%3.0f-%3.0f] %-8s raw=%.3f accum=%.3f\n", s.Start, s.End, s.Label,
			meanIn(series, s.Start, s.End), meanIn(acc, s.Start, s.End))
	}
	for _, th := range []float64{0.3, 0.4, 0.5, 0.6} {
		c := eval.SegmentConfig{StepDur: 0.1, Threshold: th, MinDuration: 2, MergeGap: 2}
		pr := eval.Score(eval.Segments(acc, c), race.Excitement)
		fmt.Printf("  accum th=%.1f: P=%.2f R=%.2f (TP %d FP %d FN %d)\n", th, pr.Precision, pr.Recall, pr.TP, pr.FP, pr.FN)
	}
}

// TestProbeDBNSegments prints DBN predicted segments vs truth.
func TestProbeDBNSegments(t *testing.T) {
	if os.Getenv("F1_PROBE") == "" {
		t.Skip("probe disabled")
	}
	cfg := DefaultExpConfig()
	cfg.RaceDur = 300
	cfg.TrainDur = 150
	cfg.EMIterations = 6
	l := NewLab(cfg)
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		t.Fatal(err)
	}
	obs := f.AudioObservations()
	race := l.Race(synth.GermanGP)
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, f, obs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	series, _ := res.MarginalSeries(NodeEA, 1)
	pred := eval.Segments(series, excitedSegConfig)
	fmt.Println("truth:")
	for _, s := range race.Excitement {
		fmt.Printf("  [%6.1f %6.1f] %s\n", s.Start, s.End, s.Label)
	}
	fmt.Println("pred:")
	for _, s := range pred {
		fmt.Printf("  [%6.1f %6.1f]\n", s.Start, s.End)
	}
}

// TestProbeStartWindow inspects audio evidence inside the start window.
func TestProbeStartWindow(t *testing.T) {
	if os.Getenv("F1_PROBE") == "" {
		t.Skip("probe disabled")
	}
	cfg := DefaultExpConfig()
	cfg.RaceDur = 300
	cfg.TrainDur = 150
	l := NewLab(cfg)
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 310; i < 460; i += 10 {
		fmt.Printf("t=%4.1f speech=%-5v pause=%.2f ste=%.2f pitch=%.2f mfcc=%.2f kw=%.2f\n",
			float64(i)/10, f.Speech[i], f.PauseRate[i], f.STEAvg[i], f.PitchAvg[i], f.MFCCAvg[i], f.Keywords[i])
	}
}

// TestProbeUSAReplay inspects false-replay pressure on shaky races.
func TestProbeUSAReplay(t *testing.T) {
	if os.Getenv("F1_PROBE") == "" {
		t.Skip("probe disabled")
	}
	for _, p := range []synth.Profile{synth.GermanGP, synth.USAGP, synth.BelgianGP} {
		race := synth.GenerateRace(p, 220, 2001)
		f, err := Extract(race, Options{Seed: 2001, SkipText: true})
		if err != nil {
			t.Fatal(err)
		}
		inReplay, outReplay, inN, outN := 0.0, 0.0, 0, 0
		for i, v := range f.Replay {
			tm := float64(i) * ClipDur
			in := false
			for _, e := range race.EventsOf(synth.EventReplay) {
				if tm >= e.Start && tm < e.End {
					in = true
				}
			}
			if in {
				inReplay += v
				inN++
			} else {
				outReplay += v
				outN++
			}
		}
		fmt.Printf("%s: replay in=%.2f out=%.3f (outN=%d)\n", p.Name, inReplay/float64(max(inN, 1)), outReplay/float64(max(outN, 1)), outN)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestProbeStartAttribution inspects start-labeled windows at 600s.
func TestProbeStartAttribution(t *testing.T) {
	if os.Getenv("F1_PROBE") == "" {
		t.Skip("probe disabled")
	}
	cfg := DefaultExpConfig()
	l := NewLab(cfg)
	d, err := l.trainAVDBN(true)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := l.Features(synth.GermanGP)
	race := l.Race(synth.GermanGP)
	res, err := d.Filter(f.AVObservations(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	hSeries, _ := res.MarginalSeries(NodeHighlight, 1)
	highlights := eval.Segments(hSeries, highlightSegConfig)
	series := map[string][]float64{}
	rawSeries := map[string][]float64{}
	for _, node := range []string{NodeStart, NodeFlyOut, NodePassing} {
		s, _ := res.MarginalSeries(node, 1)
		rawSeries[labelOf(node)] = s
		series[labelOf(node)] = liftSeries(s)
	}
	attr := eval.Attribution{Series: series, StepDur: ClipDur, MinProb: 0.2}
	meanIn := func(s []float64, lo, hi float64) float64 {
		a, n := 0.0, 0
		for i := int(lo / ClipDur); i < int(hi/ClipDur) && i < len(s); i++ {
			a += s[i]
			n++
		}
		if n == 0 {
			return 0
		}
		return a / float64(n)
	}
	for _, h := range highlights {
		fmt.Printf("highlight [%5.1f-%5.1f] rawST=%.2f liftST=%.2f rawFO=%.2f rawPA=%.2f",
			h.Start, h.End, meanIn(rawSeries["start"], h.Start, h.End), meanIn(series["start"], h.Start, h.End),
			meanIn(rawSeries["flyout"], h.Start, h.End), meanIn(rawSeries["passing"], h.Start, h.End))
		for _, e := range race.Events {
			if e.Start < h.End && h.Start < e.End {
				fmt.Printf(" | truth %s", e.Type)
			}
		}
		fmt.Println()
	}
	for _, s := range attr.Attribute(highlights) {
		fmt.Printf("label %s [%5.1f-%5.1f]\n", s.Label, s.Start, s.End)
	}
}
