package f1

import (
	"fmt"
	"sort"

	"cobra/internal/cobra"
	"cobra/internal/synth"
)

// LiveIngestor drives a synthetic race through the catalog as a live
// broadcast: each Step advances the synth feed, appends the feature
// samples for the clips that fully aired, appends the events and
// captions that completed, and moves the video's duration watermark.
// All appends are copy-on-write kernel appends, so queries running
// concurrently see consistent snapshots.
//
// Feature extraction runs once, up front, over the whole race — the
// pipeline is deterministic, so extracting clip-by-clip would produce
// the same values — but the ingestor reveals each clip's samples only
// after that clip has aired. Events are revealed on completion (see
// synth.Feed), so a standing query can never observe metadata from
// material that has not aired yet.
type LiveIngestor struct {
	cat   *cobra.Catalog
	video string
	feed  *synth.Feed

	series   map[string][]float64
	names    []string // sorted series names, for deterministic appends
	clips    int      // total clips in the full race
	clipRows int      // clips appended so far
}

// NewLiveIngestor extracts the race's features and registers the
// video as a live stream at watermark zero. seed drives the simulated
// acoustic front-end, as in Options.
func NewLiveIngestor(cat *cobra.Catalog, video string, race *synth.Race, seed int64) (*LiveIngestor, error) {
	f, err := Extract(race, Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("f1: live extract: %w", err)
	}
	series := map[string][]float64{
		"keywords": f.Keywords, "pauserate": f.PauseRate,
		"steavg": f.STEAvg, "stedyn": f.STEDyn, "stemax": f.STEMax,
		"pitchavg": f.PitchAvg, "pitchdyn": f.PitchDyn, "pitchmax": f.PitchMax,
		"mfccavg": f.MFCCAvg, "mfccmax": f.MFCCMax,
		"partofrace": f.PartOfRace, "replay": f.Replay, "colordiff": f.ColorDiff,
		"semaphore": f.Semaphore, "dust": f.Dust, "sand": f.Sand, "motion": f.Motion,
		"passing": f.Passing, "audioex": f.AudioExcitementScore(),
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	// Register at one clip of duration (the catalog requires a positive
	// duration); the first Step moves the watermark to the aired time.
	if err := cat.PutVideo(cobra.Video{Name: video, Duration: ClipDur, FPS: synth.FPS}); err != nil {
		return nil, err
	}
	if err := cat.SetLive(video, true); err != nil {
		return nil, err
	}
	return &LiveIngestor{
		cat: cat, video: video, feed: synth.NewFeed(race),
		series: series, names: names, clips: f.N,
	}, nil
}

// Video returns the live video's catalog name.
func (l *LiveIngestor) Video() string { return l.video }

// Watermark returns the aired position in seconds.
func (l *LiveIngestor) Watermark() float64 { return l.feed.Now() }

// Done reports whether the whole race has aired.
func (l *LiveIngestor) Done() bool { return l.feed.Done() }

// Step airs the next dt seconds of broadcast: feature samples for
// clips that finished airing, completed events and captions, then the
// duration watermark. It returns the new watermark.
func (l *LiveIngestor) Step(dt float64) (watermark float64, err error) {
	ch := l.feed.Advance(dt)
	w := ch.To
	// Clips fully contained in the aired prefix.
	n := int(w/ClipDur + 1e-9)
	if n > l.clips {
		n = l.clips
	}
	if n > l.clipRows {
		for _, name := range l.names {
			vals := l.series[name][l.clipRows:n]
			if _, err := l.cat.AppendFeatureSamples(l.video, name, 1/ClipDur, vals); err != nil {
				return w, err
			}
		}
		l.clipRows = n
	}
	var events []cobra.Event
	for _, e := range ch.Events {
		attrs := map[string]string{}
		if e.Driver != "" {
			attrs["driver"] = e.Driver
		}
		if e.SourceType != "" {
			attrs["source"] = string(e.SourceType)
		}
		if len(attrs) == 0 {
			attrs = nil
		}
		events = append(events, cobra.Event{
			Video: l.video, Type: string(e.Type),
			Interval:   cobra.Interval{Start: e.Start, End: e.End},
			Confidence: 1,
			Attrs:      attrs,
		})
	}
	for _, c := range ch.Captions {
		for _, word := range c.Words {
			events = append(events, cobra.Event{
				Video: l.video, Type: EventCaption,
				Interval:   cobra.Interval{Start: c.Start, End: c.End},
				Confidence: 1,
				Attrs:      map[string]string{"word": word},
			})
		}
	}
	if len(events) > 0 {
		if _, err := l.cat.AppendEvents(l.video, events); err != nil {
			return w, err
		}
	}
	if w > 0 {
		if err := l.cat.SetDuration(l.video, w); err != nil {
			return w, err
		}
	}
	return w, nil
}
