package f1

import (
	"fmt"

	"cobra/internal/bayes"
	"cobra/internal/dbn"
	"cobra/internal/eval"
	"cobra/internal/synth"
)

// Ablations for the design decisions called out in DESIGN.md §5:
// evidence quantization granularity and the Dirichlet anchoring of EM.

// QuantizeN maps a [0,1] series to `levels` evidence levels with
// uniform cut points; QuantizeN(s, 3) differs from Quantize3 only in
// using uniform thresholds.
func QuantizeN(series []float64, levels int) []int {
	out := make([]int, len(series))
	for i, v := range series {
		l := int(v * float64(levels))
		if l >= levels {
			l = levels - 1
		}
		if l < 0 {
			l = 0
		}
		out[i] = l
	}
	return out
}

// monotoneShape builds a `levels`-bucket distribution that decays (up
// false) or grows (up true) geometrically — the generalized form of
// the 3-level evidence shapes.
func monotoneShape(levels int, up bool, ratio float64) []float64 {
	w := make([]float64, levels)
	v := 1.0
	for i := range w {
		idx := i
		if up {
			idx = levels - 1 - i
		}
		w[idx] = v
		v *= ratio
	}
	s := 0.0
	for _, x := range w {
		s += x
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

// newAudioSliceLevels is the fully parameterized audio slice with
// `levels`-state evidence nodes, used by the quantization ablation.
func newAudioSliceLevels(levels int) *bayes.Network {
	n := bayes.NewNetwork()
	n.MustAddNode(NodeEA, 2)
	n.MustAddNode(NodeSA, 2, NodeEA)
	n.MustAddNode(NodeVS, 2, NodeEA)
	n.MustSetCPT(NodeEA, []float64{0.85, 0.15})
	n.MustSetCPT(NodeSA, []float64{0.45, 0.55, 0.05, 0.95})
	n.MustSetCPT(NodeVS, []float64{0.85, 0.15, 0.10, 0.90})
	off := monotoneShape(levels, false, 0.28)
	on := monotoneShape(levels, true, 0.62)
	pauseOn := monotoneShape(levels, false, 0.32)
	pauseOff := monotoneShape(levels, true, 0.30)
	addN := func(name, parent string, a, b []float64) {
		n.MustAddNode(name, levels, parent)
		n.MustSetCPT(name, append(append([]float64(nil), a...), b...))
	}
	addN("Keywords", NodeEA, off, on)
	addN("PauseRate", NodeSA, pauseOff, pauseOn)
	for _, name := range []string{"MFCCAvg", "MFCCMax"} {
		addN(name, NodeSA, off, on)
	}
	for _, name := range []string{"STEAvg", "STEDyn", "STEMax", "PitchAvg", "PitchDyn", "PitchMax"} {
		addN(name, NodeVS, off, on)
	}
	return n
}

// QuantizationAblation trains and evaluates the audio DBN with 2, 3
// and 4 evidence levels on the German GP. Coarse quantization loses
// the mid band where mild excitement lives; fine quantization thins
// per-bucket training counts.
func (l *Lab) QuantizationAblation() ([]Row, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	race := l.Race(synth.GermanGP)
	series := [][]float64{
		f.Keywords, f.PauseRate,
		f.STEAvg, f.STEDyn, f.STEMax,
		f.PitchAvg, f.PitchDyn, f.PitchMax,
		f.MFCCAvg, f.MFCCMax,
	}
	var rows []Row
	for _, levels := range []int{2, 3, 4} {
		q := make([][]int, len(series))
		for k, s := range series {
			q[k] = QuantizeN(s, levels)
		}
		obs := make([][]int, f.N)
		for i := 0; i < f.N; i++ {
			row := make([]int, len(series))
			for k := range series {
				row[k] = q[k][i]
			}
			obs[i] = row
		}
		d, err := dbn.New(newAudioSliceLevels(levels), AudioEvidenceNames,
			audioTemporalEdges(FullyParameterized, TemporalFig8))
		if err != nil {
			return nil, err
		}
		cfg := dbn.DefaultEMConfig()
		cfg.MaxIterations = l.Cfg.EMIterations
		cfg.Anchor = 10
		if _, err := d.LearnEM(splitSegments(obs[:l.trainClips(f)], l.Cfg.TrainSegments), cfg); err != nil {
			return nil, err
		}
		res, err := d.Filter(obs, nil)
		if err != nil {
			return nil, err
		}
		s, err := res.MarginalSeries(NodeEA, 1)
		if err != nil {
			return nil, err
		}
		pr := scoreExcitement(s, race)
		rows = append(rows, Row{
			Name: fmt.Sprintf("quantization %d levels", levels), Metric: "excited",
			Precision: pr.Precision, Recall: pr.Recall,
			LogLikelihood: res.LogLikelihood,
		})
	}
	return rows, nil
}

// AnchorAblation compares anchored EM (Dirichlet pseudo-counts on the
// domain-knowledge initialization) with plain EM for the audio-visual
// network: without the anchor, EM decouples the sub-event nodes from
// the Highlight query node because the data never forces the coupling.
func (l *Lab) AnchorAblation() ([]Row, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	race := l.Race(synth.GermanGP)
	obs := f.AVObservations(true)
	var rows []Row
	for _, anchor := range []float64{60, 0} {
		d, err := NewAVDBN(true)
		if err != nil {
			return nil, err
		}
		cfg := dbn.DefaultEMConfig()
		cfg.MaxIterations = l.Cfg.EMIterations
		cfg.Anchor = anchor
		if _, err := d.LearnEM(splitSegments(obs[:l.trainClips(f)], 6), cfg); err != nil {
			return nil, err
		}
		res, err := d.Filter(obs, nil)
		if err != nil {
			return nil, err
		}
		s, err := res.MarginalSeries(NodeHighlight, 1)
		if err != nil {
			return nil, err
		}
		pr := eval.Score(eval.Segments(s, highlightSegConfig), race.Highlights)
		name := "anchored EM"
		if anchor == 0 {
			name = "plain EM"
		}
		rows = append(rows, Row{Name: name, Metric: "highlight",
			Precision: pr.Precision, Recall: pr.Recall})
	}
	return rows, nil
}
