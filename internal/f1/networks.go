package f1

import (
	"fmt"

	"cobra/internal/bayes"
	"cobra/internal/dbn"
)

// Audio network node names.
const (
	NodeEA = "EA" // Excited Announcer: the query node
	NodeSA = "SA" // speech activity (hidden)
	NodeVS = "VS" // voice stress (hidden)
)

// AudioEvidenceNames lists the ten audio evidence nodes f1..f10 in
// observation order.
var AudioEvidenceNames = []string{
	"Keywords", "PauseRate",
	"STEAvg", "STEDyn", "STEMax",
	"PitchAvg", "PitchDyn", "PitchMax",
	"MFCCAvg", "MFCCMax",
}

// BNStructure selects one of the Fig. 7 slice structures.
type BNStructure int

// The three §5.5 audio network structures.
const (
	// FullyParameterized is Fig. 7a: EA drives hidden speech-activity
	// and voice-stress nodes, which drive the evidence.
	FullyParameterized BNStructure = iota
	// DirectEvidence is Fig. 7b: every evidence node hangs directly off
	// the query node.
	DirectEvidence
	// InputOutput is Fig. 7c: two hidden input nodes summarize evidence
	// groups and jointly drive the query node.
	InputOutput
)

// String names the structure as in Table 1.
func (s BNStructure) String() string {
	switch s {
	case FullyParameterized:
		return "fully-parameterized"
	case DirectEvidence:
		return "direct-evidence"
	case InputOutput:
		return "input-output"
	default:
		return fmt.Sprintf("BNStructure(%d)", int(s))
	}
}

// lowHigh builds a 3-level evidence CPT for a binary parent: rows are
// parent=0 then parent=1.
func lowHigh(off, on [3]float64) []float64 {
	return []float64{off[0], off[1], off[2], on[0], on[1], on[2]}
}

// Standard evidence shapes.
var (
	shapeOff      = [3]float64{0.75, 0.18, 0.07} // parent inactive: low values
	shapeOn       = [3]float64{0.15, 0.33, 0.52} // parent active: high values
	shapePauseOn  = [3]float64{0.70, 0.22, 0.08} // speaking: few pauses
	shapePauseOff = [3]float64{0.06, 0.14, 0.80} // not speaking: many pauses
)

// NewAudioSlice builds the intra-slice audio network for the given
// structure, with informative initial CPTs (the domain knowledge the
// system stores in the database, §2) that EM then refines.
func NewAudioSlice(structure BNStructure) *bayes.Network {
	n := bayes.NewNetwork()
	switch structure {
	case FullyParameterized:
		n.MustAddNode(NodeEA, 2)
		n.MustAddNode(NodeSA, 2, NodeEA)
		n.MustAddNode(NodeVS, 2, NodeEA)
		n.MustSetCPT(NodeEA, []float64{0.85, 0.15})
		n.MustSetCPT(NodeSA, []float64{0.45, 0.55, 0.05, 0.95})
		n.MustSetCPT(NodeVS, []float64{0.85, 0.15, 0.10, 0.90})
		addEvidence(n, "Keywords", NodeEA, shapeOff, [3]float64{0.45, 0.25, 0.30})
		addEvidence(n, "PauseRate", NodeSA, shapePauseOff, shapePauseOn)
		for _, name := range []string{"MFCCAvg", "MFCCMax"} {
			addEvidence(n, name, NodeSA, shapeOff, shapeOn)
		}
		for _, name := range []string{"STEAvg", "STEDyn", "STEMax", "PitchAvg", "PitchDyn", "PitchMax"} {
			addEvidence(n, name, NodeVS, shapeOff, shapeOn)
		}
	case DirectEvidence:
		n.MustAddNode(NodeEA, 2)
		n.MustSetCPT(NodeEA, []float64{0.85, 0.15})
		addEvidence(n, "Keywords", NodeEA, shapeOff, [3]float64{0.45, 0.25, 0.30})
		addEvidence(n, "PauseRate", NodeEA, shapePauseOff, shapePauseOn)
		for _, name := range []string{"STEAvg", "STEDyn", "STEMax", "PitchAvg", "PitchDyn", "PitchMax", "MFCCAvg", "MFCCMax"} {
			addEvidence(n, name, NodeEA, shapeOff, shapeOn)
		}
	case InputOutput:
		// Input nodes summarize evidence groups; the query node is the
		// output of both.
		n.MustAddNode("I1", 2) // energy/articulation group
		n.MustAddNode("I2", 2) // pitch/keyword group
		n.MustAddNode(NodeEA, 2, "I1", "I2")
		n.MustSetCPT("I1", []float64{0.7, 0.3})
		n.MustSetCPT("I2", []float64{0.8, 0.2})
		n.MustSetCPT(NodeEA, []float64{
			0.98, 0.02, // i1=0 i2=0
			0.75, 0.25, // i1=0 i2=1
			0.80, 0.20, // i1=1 i2=0
			0.15, 0.85, // i1=1 i2=1
		})
		addEvidence(n, "PauseRate", "I1", shapePauseOff, shapePauseOn)
		for _, name := range []string{"STEAvg", "STEDyn", "STEMax", "MFCCAvg", "MFCCMax"} {
			addEvidence(n, name, "I1", shapeOff, shapeOn)
		}
		addEvidence(n, "Keywords", "I2", shapeOff, [3]float64{0.45, 0.25, 0.30})
		for _, name := range []string{"PitchAvg", "PitchDyn", "PitchMax"} {
			addEvidence(n, name, "I2", shapeOff, shapeOn)
		}
	}
	return n
}

func addEvidence(n *bayes.Network, name, parent string, off, on [3]float64) {
	n.MustAddNode(name, 3, parent)
	n.MustSetCPT(name, lowHigh(off, on))
}

// TemporalVariant selects the inter-slice wiring studied in §5.5.
type TemporalVariant int

// The three temporal-dependency configurations.
const (
	// TemporalFig8 is the paper's Fig. 8: every non-observable node
	// persists, and the query node distributes evidence to the other
	// non-observables in the next slice.
	TemporalFig8 TemporalVariant = iota
	// TemporalToQuery: all non-observable nodes feed the query node in
	// the next slice, and only the query node receives temporal
	// evidence (no persistence for SA/VS).
	TemporalToQuery
	// TemporalCorresponding: nodes persist and also feed the query
	// node, but the query node does not feed the other non-observables.
	TemporalCorresponding
)

// String names the variant.
func (v TemporalVariant) String() string {
	switch v {
	case TemporalFig8:
		return "fig8"
	case TemporalToQuery:
		return "to-query"
	case TemporalCorresponding:
		return "corresponding"
	default:
		return fmt.Sprintf("TemporalVariant(%d)", int(v))
	}
}

// audioTemporalEdges returns the inter-slice edges for a structure and
// variant. Structures without SA/VS only get the query self-edge.
func audioTemporalEdges(structure BNStructure, variant TemporalVariant) []dbn.Edge {
	switch structure {
	case DirectEvidence:
		return []dbn.Edge{{From: NodeEA, To: NodeEA}}
	case InputOutput:
		return []dbn.Edge{
			{From: NodeEA, To: NodeEA},
			{From: "I1", To: "I1"},
			{From: "I2", To: "I2"},
		}
	}
	switch variant {
	case TemporalToQuery:
		return []dbn.Edge{
			{From: NodeEA, To: NodeEA},
			{From: NodeSA, To: NodeEA},
			{From: NodeVS, To: NodeEA},
		}
	case TemporalCorresponding:
		return []dbn.Edge{
			{From: NodeEA, To: NodeEA},
			{From: NodeSA, To: NodeSA},
			{From: NodeVS, To: NodeVS},
			{From: NodeSA, To: NodeEA},
			{From: NodeVS, To: NodeEA},
		}
	default: // TemporalFig8
		return []dbn.Edge{
			{From: NodeEA, To: NodeEA},
			{From: NodeSA, To: NodeSA},
			{From: NodeVS, To: NodeVS},
			{From: NodeEA, To: NodeSA},
			{From: NodeEA, To: NodeVS},
		}
	}
}

// NewAudioDBN builds the audio DBN for a structure and temporal
// variant.
func NewAudioDBN(structure BNStructure, variant TemporalVariant) (*dbn.DBN, error) {
	return dbn.New(NewAudioSlice(structure), AudioEvidenceNames, audioTemporalEdges(structure, variant))
}

// AudioObservations quantizes the ten audio features into the
// evidence-vector sequence consumed by the audio networks.
func (f *Features) AudioObservations() [][]int {
	series := [][]float64{
		f.Keywords, f.PauseRate,
		f.STEAvg, f.STEDyn, f.STEMax,
		f.PitchAvg, f.PitchDyn, f.PitchMax,
		f.MFCCAvg, f.MFCCMax,
	}
	q := make([][]int, len(series))
	for k, s := range series {
		q[k] = Quantize3(s)
	}
	obs := make([][]int, f.N)
	for i := 0; i < f.N; i++ {
		row := make([]int, len(series))
		for k := range series {
			row[k] = q[k][i]
		}
		obs[i] = row
	}
	return obs
}

// Audio-visual network node names (Fig. 10).
const (
	NodeHighlight = "Highlight"
	NodeStart     = "Start"
	NodeFlyOut    = "FlyOut"
	NodePassing   = "Passing"
)

// avEvidenceNames returns the AV evidence order, with or without the
// passing sub-network.
func avEvidenceNames(withPassing bool) []string {
	names := []string{
		"AudioEx", "Keywords", "Replay",
		"Semaphore", "Motion", "PartOfRace",
		"Dust", "Sand",
	}
	if withPassing {
		names = append(names, "PassingCue")
	}
	return names
}

// NewAVSlice builds the Fig. 10 one-slice structure. The ten audio
// evidence nodes are summarized into a single 3-level AudioEx node to
// keep the audio-visual joint state tractable; the audio experiments
// (Table 1/2) use the full ten-node networks.
func NewAVSlice(withPassing bool) *bayes.Network {
	n := bayes.NewNetwork()
	n.MustAddNode(NodeHighlight, 2)
	n.MustAddNode(NodeEA, 2, NodeHighlight)
	n.MustAddNode(NodeStart, 2, NodeHighlight)
	n.MustAddNode(NodeFlyOut, 2, NodeHighlight)
	n.MustSetCPT(NodeHighlight, []float64{0.88, 0.12})
	n.MustSetCPT(NodeEA, []float64{0.97, 0.03, 0.40, 0.60})
	n.MustSetCPT(NodeStart, []float64{0.999, 0.001, 0.80, 0.20})
	n.MustSetCPT(NodeFlyOut, []float64{0.999, 0.001, 0.82, 0.18})
	if withPassing {
		n.MustAddNode(NodePassing, 2, NodeHighlight)
		n.MustSetCPT(NodePassing, []float64{0.998, 0.002, 0.70, 0.30})
	}
	addEvidence(n, "AudioEx", NodeEA, shapeOff, [3]float64{0.12, 0.30, 0.58})
	addEvidence(n, "Keywords", NodeEA, shapeOff, [3]float64{0.45, 0.25, 0.30})
	addEvidence(n, "Replay", NodeHighlight, [3]float64{0.90, 0.05, 0.05}, [3]float64{0.45, 0.15, 0.40})
	addEvidence(n, "Semaphore", NodeStart, [3]float64{0.97, 0.02, 0.01}, [3]float64{0.35, 0.25, 0.40})
	addEvidence(n, "Motion", NodeStart, [3]float64{0.45, 0.30, 0.25}, [3]float64{0.20, 0.35, 0.45})
	addEvidence(n, "PartOfRace", NodeStart, [3]float64{0.30, 0.35, 0.35}, [3]float64{0.85, 0.12, 0.03})
	addEvidence(n, "Dust", NodeFlyOut, [3]float64{0.92, 0.06, 0.02}, [3]float64{0.20, 0.30, 0.50})
	addEvidence(n, "Sand", NodeFlyOut, [3]float64{0.92, 0.06, 0.02}, [3]float64{0.25, 0.30, 0.45})
	if withPassing {
		addEvidence(n, "PassingCue", NodePassing, [3]float64{0.70, 0.20, 0.10}, [3]float64{0.25, 0.35, 0.40})
	}
	return n
}

// avTemporalEdges is the Fig. 11 wiring: all hidden nodes persist and
// the main query node distributes evidence to the sub-event nodes.
func avTemporalEdges(withPassing bool) []dbn.Edge {
	edges := []dbn.Edge{
		{From: NodeHighlight, To: NodeHighlight},
		{From: NodeEA, To: NodeEA},
		{From: NodeStart, To: NodeStart},
		{From: NodeFlyOut, To: NodeFlyOut},
		{From: NodeHighlight, To: NodeEA},
		{From: NodeHighlight, To: NodeStart},
		{From: NodeHighlight, To: NodeFlyOut},
	}
	if withPassing {
		edges = append(edges,
			dbn.Edge{From: NodePassing, To: NodePassing},
			dbn.Edge{From: NodeHighlight, To: NodePassing})
	}
	return edges
}

// NewAVDBN builds the audio-visual DBN with or without the passing
// sub-network (the Table 4 ablation).
func NewAVDBN(withPassing bool) (*dbn.DBN, error) {
	return dbn.New(NewAVSlice(withPassing), avEvidenceNames(withPassing), avTemporalEdges(withPassing))
}

// AVObservations quantizes the audio-visual evidence vector sequence.
func (f *Features) AVObservations(withPassing bool) [][]int {
	audioEx := f.AudioExcitementScore()
	series := [][]float64{
		audioEx, f.Keywords, f.Replay,
		f.Semaphore, f.Motion, f.PartOfRace,
		f.Dust, f.Sand,
	}
	if withPassing {
		series = append(series, f.Passing)
	}
	q := make([][]int, len(series))
	for k, s := range series {
		q[k] = Quantize3(s)
	}
	obs := make([][]int, f.N)
	for i := 0; i < f.N; i++ {
		row := make([]int, len(series))
		for k := range series {
			row[k] = q[k][i]
		}
		obs[i] = row
	}
	return obs
}
