package f1

import (
	"strings"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/query"
	"cobra/internal/synth"
)

// TestCorpusEndToEnd drives the full DBMS stack: corpus -> catalog ->
// preprocessor -> COQL, the paper's §5.6 query capability.
func TestCorpusEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := DefaultExpConfig()
	cfg.RaceDur = 200
	cfg.TrainDur = 120
	cfg.EMIterations = 3
	corpus := NewCorpus(cfg)

	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if err := corpus.IngestVideos(cat); err != nil {
		t.Fatal(err)
	}
	pre := cobra.NewPreprocessor(cat)
	corpus.RegisterExtractors(pre)
	eng := query.NewEngine(pre)

	videos := cat.Videos()
	if len(videos) != 3 {
		t.Fatalf("videos = %v", videos)
	}

	// Text query: recognized captions.
	res, err := eng.Run(`SELECT SEGMENTS FROM german-gp WHERE TEXT CONTAINS 'PIT'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no PIT captions recognized")
	}

	// Rule-derived pit stops with drivers: compare against ground truth.
	race, _ := corpus.Race("german-gp")
	truthPits := race.EventsOf(synth.EventPitStop)
	res, err = eng.Run(`SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	realPits := 0
	for _, r := range res {
		if r.Confidence > 0 {
			realPits++
		}
	}
	if realPits == 0 {
		t.Fatalf("no pit stops derived (truth has %d)", len(truthPits))
	}
	// Driver-constrained pit-stop query: use a driver from ground truth.
	driver := truthPits[0].Driver
	res, err = eng.Run(`SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop', driver='` + driver + `')`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		for _, tp := range truthPits {
			if tp.Driver == driver && r.Interval.Intersects(cobra.Interval{Start: tp.Start, End: tp.End}) {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("pit stop of %s not retrieved: %v (truth %v)", driver, res, truthPits)
	}

	// DBN-extracted highlights (dynamic extraction at query time).
	res, err = eng.Run(`SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	realHighlights := 0
	for _, r := range res {
		if r.Confidence > 0.3 {
			realHighlights++
		}
	}
	if realHighlights == 0 {
		t.Fatal("no highlights extracted")
	}

	// Feature threshold query over a materialized stream.
	res, err = eng.Run(`SELECT SEGMENTS FROM german-gp WHERE FEATURE('replay') > 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no replay runs found")
	}

	// Compound query: highlights near pit stops (may be empty, but must
	// execute).
	if _, err := eng.Run(`SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight') WITHIN 20 OF EVENT('pitstop')`); err != nil {
		t.Fatal(err)
	}

	// The winner query (paper: "the race leader crossing the finish
	// line" via WINNER captions).
	res, err = eng.Run(`SELECT SEGMENTS FROM german-gp WHERE EVENT('winner')`)
	if err != nil {
		t.Fatal(err)
	}
	winnerOK := false
	for _, r := range res {
		if strings.EqualFold(r.Attrs["driver"], synth.Drivers[0]) {
			winnerOK = true
		}
	}
	if !winnerOK {
		t.Logf("winner results = %v (caption recognition may have missed; acceptable)", res)
	}

	// Snapshot round trip: metadata persists.
	dir := t.TempDir()
	if err := store.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	store2 := monet.NewStore()
	if err := store2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	cat2 := cobra.NewCatalog(store2)
	if !cat2.HasEvents("german-gp", EventHighlight) {
		t.Fatal("snapshot lost extracted highlights")
	}
}

func TestCorpusUnknownVideo(t *testing.T) {
	cfg := DefaultExpConfig()
	cfg.RaceDur = 60
	corpus := NewCorpus(cfg)
	cat := cobra.NewCatalog(monet.NewStore())
	if err := corpus.extractFeatures(cat, "nope"); err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestCorpusAddRace(t *testing.T) {
	cfg := DefaultExpConfig()
	cfg.RaceDur = 60
	corpus := NewCorpus(cfg)
	corpus.AddRace("test-gp", synth.GenerateRace(synth.GermanGP, 60, 99))
	if _, ok := corpus.Race("test-gp"); !ok {
		t.Fatal("added race not found")
	}
	cat := cobra.NewCatalog(monet.NewStore())
	if err := corpus.IngestVideos(cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Videos()) != 4 {
		t.Fatalf("videos = %v", cat.Videos())
	}
}
