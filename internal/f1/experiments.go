package f1

import (
	"fmt"
	"math"
	"math/rand"

	"cobra/internal/bayes"
	"cobra/internal/dbn"
	"cobra/internal/eval"
	"cobra/internal/keyword"
	"cobra/internal/synth"
)

// ExpConfig scales the experiments. The paper's races run ~90 minutes;
// simulated races default to 10 minutes with proportionally raised
// event densities (documented in DESIGN.md), which preserves the
// statistical structure the networks consume while keeping the full
// pixel/PCM pipeline affordable.
type ExpConfig struct {
	// RaceDur is the simulated race duration in seconds.
	RaceDur float64
	// TrainDur is the training prefix in seconds (the paper trains on
	// 300 s of the German GP).
	TrainDur float64
	// TrainSegments splits the training prefix for DBN learning (the
	// paper uses 12 segments of 25 s).
	TrainSegments int
	// Seed drives the simulators.
	Seed int64
	// EMIterations caps EM training.
	EMIterations int
}

// DefaultExpConfig returns the standard experiment scale.
func DefaultExpConfig() ExpConfig {
	return ExpConfig{
		RaceDur:       600,
		TrainDur:      300,
		TrainSegments: 12,
		Seed:          2001,
		EMIterations:  10,
	}
}

// Row is one table row: a measured precision/recall next to the
// paper's reported numbers.
type Row struct {
	Name      string
	Metric    string
	Precision float64
	Recall    float64
	PaperP    float64
	PaperR    float64
	// LogLikelihood optionally carries a held-out model-fit score
	// (temporal-dependency study).
	LogLikelihood float64
}

// String formats the row for the bench harness.
func (r Row) String() string {
	s := fmt.Sprintf("%-28s %-10s P=%5.1f%% (paper %4.0f%%)  R=%5.1f%% (paper %4.0f%%)",
		r.Name, r.Metric, 100*r.Precision, r.PaperP, 100*r.Recall, r.PaperR)
	if r.LogLikelihood != 0 {
		s += fmt.Sprintf("  heldout-LL=%.0f", r.LogLikelihood)
	}
	return s
}

// Lab caches the expensive per-race extraction across experiments.
type Lab struct {
	Cfg   ExpConfig
	races map[string]*synth.Race
	feats map[string]*Features
}

// NewLab returns a lab for the configuration.
func NewLab(cfg ExpConfig) *Lab {
	return &Lab{Cfg: cfg, races: map[string]*synth.Race{}, feats: map[string]*Features{}}
}

// Race returns (generating once) the simulated race for a profile.
func (l *Lab) Race(p synth.Profile) *synth.Race {
	if r, ok := l.races[p.Name]; ok {
		return r
	}
	r := synth.GenerateRace(p, l.Cfg.RaceDur, l.Cfg.Seed)
	l.races[p.Name] = r
	return r
}

// Features returns (extracting once) the full feature set for a
// profile.
func (l *Lab) Features(p synth.Profile) (*Features, error) {
	if f, ok := l.feats[p.Name]; ok {
		return f, nil
	}
	f, err := Extract(l.Race(p), Options{Seed: l.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	l.feats[p.Name] = f
	return f, nil
}

// trainClips returns the number of clips in the training prefix.
func (l *Lab) trainClips(f *Features) int {
	n := int(l.Cfg.TrainDur / ClipDur)
	if n > f.N {
		n = f.N
	}
	return n
}

// excitedSegConfig converts excited-speech probability series into
// segments: excitement bursts are short, so the duration floor is 2 s
// (the 6 s floor applies to highlights).
var excitedSegConfig = eval.SegmentConfig{StepDur: ClipDur, Threshold: 0.5, MinDuration: 2, MergeGap: 2}

// highlightSegConfig is the paper's Table 3 setting: threshold 0.5,
// minimum duration 6 s.
var highlightSegConfig = eval.SegmentConfig{StepDur: ClipDur, Threshold: 0.5, MinDuration: 6, MergeGap: 2}

// bnSamples converts an observation matrix into i.i.d. evidence maps
// for static-BN EM.
func bnSamples(net *bayes.Network, names []string, obs [][]int) []bayes.Evidence {
	idx := make([]int, len(names))
	for k, name := range names {
		idx[k] = net.MustIndex(name)
	}
	out := make([]bayes.Evidence, len(obs))
	for i, row := range obs {
		ev := bayes.Evidence{}
		for k, v := range row {
			ev[idx[k]] = v
		}
		out[i] = ev
	}
	return out
}

// bnSeries computes the per-clip static posterior P(EA=1 | evidence_t).
func bnSeries(net *bayes.Network, names []string, obs [][]int, query string) ([]float64, error) {
	samples := bnSamples(net, names, obs)
	q := net.MustIndex(query)
	out := make([]float64, len(samples))
	for i, ev := range samples {
		p, err := net.Posterior(q, ev)
		if err != nil {
			return nil, err
		}
		out[i] = p[1]
	}
	return out, nil
}

// accumulateBN post-processes a static-BN series the way the paper
// does ("we accumulated values of a query node over time"): a 2 s
// moving average.
func accumulateBN(series []float64) []float64 {
	const w = 20 // 2 s of 0.1 s clips
	out := make([]float64, len(series))
	sum := 0.0
	for i := range series {
		sum += series[i]
		if i >= w {
			sum -= series[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// trainAudioBN fits a slice network as a static BN on the training
// prefix.
func (l *Lab) trainAudioBN(structure BNStructure, f *Features, obs [][]int) (*bayes.Network, error) {
	net := NewAudioSlice(structure)
	cfg := bayes.DefaultEMConfig()
	cfg.MaxIterations = l.Cfg.EMIterations
	samples := bnSamples(net, AudioEvidenceNames, obs[:l.trainClips(f)])
	if _, err := net.LearnEM(samples, cfg); err != nil {
		return nil, err
	}
	return net, nil
}

// trainAudioDBN fits the audio DBN on the training prefix split into
// segments.
func (l *Lab) trainAudioDBN(structure BNStructure, variant TemporalVariant, f *Features, obs [][]int) (*dbn.DBN, error) {
	d, err := NewAudioDBN(structure, variant)
	if err != nil {
		return nil, err
	}
	seqs := splitSegments(obs[:l.trainClips(f)], l.Cfg.TrainSegments)
	cfg := dbn.DefaultEMConfig()
	cfg.MaxIterations = l.Cfg.EMIterations
	cfg.Anchor = 10
	if _, err := d.LearnEM(seqs, cfg); err != nil {
		return nil, err
	}
	return d, nil
}

func splitSegments(obs [][]int, n int) [][][]int {
	if n < 1 {
		n = 1
	}
	var out [][][]int
	size := len(obs) / n
	if size == 0 {
		return [][][]int{obs}
	}
	for i := 0; i < n; i++ {
		lo := i * size
		hi := lo + size
		if i == n-1 {
			hi = len(obs)
		}
		out = append(out, obs[lo:hi])
	}
	return out
}

// scoreExcitement scores a query series against the ground-truth
// excited-speech segments.
func scoreExcitement(series []float64, race *synth.Race) eval.PR {
	pred := eval.Segments(series, excitedSegConfig)
	return eval.Score(pred, race.Excitement)
}

// scoreExcitementAdaptive scores an accumulated static-BN series with
// a data-driven threshold (mean + 1.5 sigma): the paper notes the BN
// output "cannot be directly employed" and must be post-processed
// before a decision.
func scoreExcitementAdaptive(series []float64, race *synth.Race) eval.PR {
	mean, sd := 0.0, 0.0
	for _, v := range series {
		mean += v
	}
	if len(series) > 0 {
		mean /= float64(len(series))
	}
	for _, v := range series {
		sd += (v - mean) * (v - mean)
	}
	if len(series) > 0 {
		sd = math.Sqrt(sd / float64(len(series)))
	}
	th := mean + 1.2*sd
	if th < 0.25 {
		th = 0.25
	}
	if th > 0.55 {
		th = 0.55
	}
	cfg := excitedSegConfig
	cfg.Threshold = th
	return eval.Score(eval.Segments(series, cfg), race.Excitement)
}

// Table1 reproduces Table 1: the three static BN structures versus the
// fully parameterized DBN for emphasized-speech detection on the
// German GP.
func (l *Lab) Table1() ([]Row, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	obs := f.AudioObservations()
	race := l.Race(synth.GermanGP)

	paper := map[BNStructure][2]float64{
		FullyParameterized: {60, 67},
		DirectEvidence:     {54, 62},
		InputOutput:        {50, 76},
	}
	var rows []Row
	for _, structure := range []BNStructure{FullyParameterized, DirectEvidence, InputOutput} {
		net, err := l.trainAudioBN(structure, f, obs)
		if err != nil {
			return nil, err
		}
		series, err := bnSeries(net, AudioEvidenceNames, obs, NodeEA)
		if err != nil {
			return nil, err
		}
		pr := scoreExcitementAdaptive(accumulateBN(series), race)
		rows = append(rows, Row{
			Name: structure.String() + " BN", Metric: "excited",
			Precision: pr.Precision, Recall: pr.Recall,
			PaperP: paper[structure][0], PaperR: paper[structure][1],
		})
	}
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, f, obs)
	if err != nil {
		return nil, err
	}
	res, err := d.Filter(obs, nil)
	if err != nil {
		return nil, err
	}
	series, err := res.MarginalSeries(NodeEA, 1)
	if err != nil {
		return nil, err
	}
	pr := scoreExcitement(series, race)
	rows = append(rows, Row{
		Name: "fully-parameterized DBN", Metric: "excited",
		Precision: pr.Precision, Recall: pr.Recall,
		PaperP: 85, PaperR: 81,
	})
	return rows, nil
}

// Table2 reproduces Table 2: the German-trained audio DBN evaluated on
// the Belgian and USA GP.
func (l *Lab) Table2() ([]Row, error) {
	fTrain, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	obsTrain := fTrain.AudioObservations()
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, fTrain, obsTrain)
	if err != nil {
		return nil, err
	}
	paper := map[string][2]float64{"belgian": {77, 79}, "usa": {76, 81}}
	var rows []Row
	for _, p := range []synth.Profile{synth.BelgianGP, synth.USAGP} {
		f, err := l.Features(p)
		if err != nil {
			return nil, err
		}
		res, err := d.Filter(f.AudioObservations(), nil)
		if err != nil {
			return nil, err
		}
		series, err := res.MarginalSeries(NodeEA, 1)
		if err != nil {
			return nil, err
		}
		pr := scoreExcitement(series, l.Race(p))
		rows = append(rows, Row{
			Name: p.Name + " GP audio DBN", Metric: "excited",
			Precision: pr.Precision, Recall: pr.Recall,
			PaperP: paper[p.Name][0], PaperR: paper[p.Name][1],
		})
	}
	return rows, nil
}

// avResult bundles the audio-visual evaluation of one race.
type avResult struct {
	Highlight eval.PR
	Sub       map[string]eval.PR // start, flyout, passing
}

// trainAVDBN fits the audio-visual DBN on the German GP training
// prefix (the paper trains on 6 sequences of 50 s).
func (l *Lab) trainAVDBN(withPassing bool) (*dbn.DBN, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	obs := f.AVObservations(withPassing)
	d, err := NewAVDBN(withPassing)
	if err != nil {
		return nil, err
	}
	segs := splitSegments(obs[:l.trainClips(f)], 6)
	cfg := dbn.DefaultEMConfig()
	cfg.MaxIterations = l.Cfg.EMIterations
	cfg.Anchor = 60
	if _, err := d.LearnEM(segs, cfg); err != nil {
		return nil, err
	}
	return d, nil
}

// evalAV runs the audio-visual DBN over a race and scores highlights
// and sub-events per the paper's procedure (threshold 0.5, min 6 s,
// sub-event attribution every 5 s for long segments).
func (l *Lab) evalAV(d *dbn.DBN, p synth.Profile, withPassing bool) (*avResult, error) {
	f, err := l.Features(p)
	if err != nil {
		return nil, err
	}
	race := l.Race(p)
	res, err := d.Filter(f.AVObservations(withPassing), nil)
	if err != nil {
		return nil, err
	}
	hSeries, err := res.MarginalSeries(NodeHighlight, 1)
	if err != nil {
		return nil, err
	}
	highlights := eval.Segments(hSeries, highlightSegConfig)
	out := &avResult{Sub: map[string]eval.PR{}}
	out.Highlight = eval.Score(highlights, race.Highlights)

	// Sub-event attribution from the supplemental query nodes. Each
	// series is normalized to its lift over the race-wide mean: static
	// cues (part-of-race) inflate a node's absolute level across long
	// stretches, but a real sub-event stands out against the node's own
	// baseline.
	series := map[string][]float64{}
	nodes := []string{NodeStart, NodeFlyOut}
	if withPassing {
		nodes = append(nodes, NodePassing)
	}
	for _, node := range nodes {
		s, err := res.MarginalSeries(node, 1)
		if err != nil {
			return nil, err
		}
		series[labelOf(node)] = liftSeries(s)
	}
	attr := eval.Attribution{Series: series, StepDur: ClipDur, MinProb: 0.2}
	labeled := attr.Attribute(highlights)

	// Sub-event truth includes replays re-showing the event type: a
	// replayed fly-out legitimately re-triggers the fly-out cues.
	truthOf := func(et synth.EventType) []eval.Segment {
		var out []eval.Segment
		for _, e := range race.Events {
			if e.Type == et || (e.Type == synth.EventReplay && e.SourceType == et) {
				out = append(out, eval.Segment{Start: e.Start, End: e.End, Label: labelOf(string(et))})
			}
		}
		return out
	}
	out.Sub["start"] = eval.ScoreLabeled(labeled, truthOf(synth.EventStart), "start")
	out.Sub["flyout"] = eval.ScoreLabeled(labeled, truthOf(synth.EventFlyOut), "flyout")
	if withPassing {
		out.Sub["passing"] = eval.ScoreLabeled(labeled, truthOf(synth.EventPassing), "passing")
	}
	return out, nil
}

// liftSeries subtracts the series' own mean, clamping at zero: the
// per-step lift over the node's race-wide baseline.
func liftSeries(s []float64) []float64 {
	if len(s) == 0 {
		return s
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	out := make([]float64, len(s))
	for i, v := range s {
		d := v - mean
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}

func labelOf(node string) string {
	switch node {
	case NodeStart, string(synth.EventStart):
		return "start"
	case NodeFlyOut, string(synth.EventFlyOut):
		return "flyout"
	case NodePassing, string(synth.EventPassing):
		return "passing"
	}
	return node
}

// Table3 reproduces Table 3: the audio-visual DBN (with the passing
// sub-network) on the German GP.
func (l *Lab) Table3() ([]Row, error) {
	d, err := l.trainAVDBN(true)
	if err != nil {
		return nil, err
	}
	r, err := l.evalAV(d, synth.GermanGP, true)
	if err != nil {
		return nil, err
	}
	return []Row{
		{Name: "german AV DBN", Metric: "highlight", Precision: r.Highlight.Precision, Recall: r.Highlight.Recall, PaperP: 84, PaperR: 86},
		{Name: "german AV DBN", Metric: "start", Precision: r.Sub["start"].Precision, Recall: r.Sub["start"].Recall, PaperP: 83, PaperR: 100},
		{Name: "german AV DBN", Metric: "flyout", Precision: r.Sub["flyout"].Precision, Recall: r.Sub["flyout"].Recall, PaperP: 64, PaperR: 78},
		{Name: "german AV DBN", Metric: "passing", Precision: r.Sub["passing"].Precision, Recall: r.Sub["passing"].Recall, PaperP: 79, PaperR: 50},
	}, nil
}

// Table4 reproduces Table 4: Belgian GP with the passing sub-network
// (degraded by camera work) and USA GP without it.
func (l *Lab) Table4() ([]Row, error) {
	dWith, err := l.trainAVDBN(true)
	if err != nil {
		return nil, err
	}
	dWithout, err := l.trainAVDBN(false)
	if err != nil {
		return nil, err
	}
	be, err := l.evalAV(dWith, synth.BelgianGP, true)
	if err != nil {
		return nil, err
	}
	us, err := l.evalAV(dWithout, synth.USAGP, false)
	if err != nil {
		return nil, err
	}
	return []Row{
		{Name: "belgian AV DBN (+passing)", Metric: "highlight", Precision: be.Highlight.Precision, Recall: be.Highlight.Recall, PaperP: 44, PaperR: 53},
		{Name: "belgian AV DBN (+passing)", Metric: "start", Precision: be.Sub["start"].Precision, Recall: be.Sub["start"].Recall, PaperP: 100, PaperR: 67},
		{Name: "belgian AV DBN (+passing)", Metric: "flyout", Precision: be.Sub["flyout"].Precision, Recall: be.Sub["flyout"].Recall, PaperP: 100, PaperR: 36},
		{Name: "belgian AV DBN (+passing)", Metric: "passing", Precision: be.Sub["passing"].Precision, Recall: be.Sub["passing"].Recall, PaperP: 28, PaperR: 31},
		{Name: "usa AV DBN (-passing)", Metric: "highlight", Precision: us.Highlight.Precision, Recall: us.Highlight.Recall, PaperP: 73, PaperR: 76},
		{Name: "usa AV DBN (-passing)", Metric: "start", Precision: us.Sub["start"].Precision, Recall: us.Sub["start"].Recall, PaperP: 100, PaperR: 50},
		{Name: "usa AV DBN (-passing)", Metric: "flyout", Precision: us.Sub["flyout"].Precision, Recall: us.Sub["flyout"].Recall, PaperP: 0, PaperR: 0},
	}, nil
}

// Fig9Result carries the Fig. 9 comparison: static-BN and DBN query
// series over the same 300 s clip, with roughness statistics.
type Fig9Result struct {
	BN, DBN           []float64
	BNRough, DBNRough float64
	TruthSegments     []eval.Segment
}

// Fig9 reproduces Fig. 9: the BN output is jagged and needs
// accumulation, the DBN output is smooth.
func (l *Lab) Fig9() (*Fig9Result, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	obs := f.AudioObservations()
	n := int(300 / ClipDur)
	if n > f.N {
		n = f.N
	}
	net, err := l.trainAudioBN(FullyParameterized, f, obs)
	if err != nil {
		return nil, err
	}
	bn, err := bnSeries(net, AudioEvidenceNames, obs[:n], NodeEA)
	if err != nil {
		return nil, err
	}
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, f, obs)
	if err != nil {
		return nil, err
	}
	res, err := d.Filter(obs[:n], nil)
	if err != nil {
		return nil, err
	}
	dbnSeries, err := res.MarginalSeries(NodeEA, 1)
	if err != nil {
		return nil, err
	}
	var truth []eval.Segment
	for _, s := range l.Race(synth.GermanGP).Excitement {
		if s.Start < float64(n)*ClipDur {
			truth = append(truth, s)
		}
	}
	return &Fig9Result{
		BN: bn, DBN: dbnSeries,
		BNRough:       eval.Roughness(bn),
		DBNRough:      eval.Roughness(dbnSeries),
		TruthSegments: truth,
	}, nil
}

// TemporalDeps reproduces the temporal-dependency study: Fig. 8 wiring
// versus the to-query and corresponding variants. Networks train on
// the German GP and are scored on the Belgian GP, where the wiring
// differences matter (on the training race all variants saturate).
func (l *Lab) TemporalDeps() ([]Row, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	obs := f.AudioObservations()
	fEval, err := l.Features(synth.BelgianGP)
	if err != nil {
		return nil, err
	}
	obsEval := fEval.AudioObservations()
	race := l.Race(synth.BelgianGP)
	// The transition tables start from random parameters (the slice
	// network keeps its informative emissions for identifiability), so
	// the wiring determines how much temporal structure EM can recover;
	// with informative transition priors every variant saturates on
	// this domain.
	var rows []Row
	for _, v := range []TemporalVariant{TemporalFig8, TemporalToQuery, TemporalCorresponding} {
		d, err := NewAudioDBN(FullyParameterized, v)
		if err != nil {
			return nil, err
		}
		d.PerturbTransitions(rand.New(rand.NewSource(l.Cfg.Seed+int64(v))), 0.9)
		seqs := splitSegments(obs[:l.trainClips(f)], l.Cfg.TrainSegments)
		emCfg := dbn.DefaultEMConfig()
		emCfg.MaxIterations = l.Cfg.EMIterations
		if _, err := d.LearnEM(seqs, emCfg); err != nil {
			return nil, err
		}
		res, err := d.Filter(obsEval, nil)
		if err != nil {
			return nil, err
		}
		series, err := res.MarginalSeries(NodeEA, 1)
		if err != nil {
			return nil, err
		}
		pr := scoreExcitement(series, race)
		rows = append(rows, Row{Name: "temporal " + v.String(), Metric: "excited",
			Precision: pr.Precision, Recall: pr.Recall,
			LogLikelihood: res.LogLikelihood})
	}
	return rows, nil
}

// ClusteringResult compares exact (one-cluster) Boyen-Koller filtering
// with the two-cluster split of §5.5 (hidden non-query nodes separated
// from the query node).
type ClusteringResult struct {
	Exact, Clustered eval.PR
	// Misclassified counts false-positive segments, the paper's
	// "larger number of misclassified sequences".
	ExactMisclassified, ClusteredMisclassified int
	// MeanAbsDiff is the mean absolute difference between exact and
	// projected query marginals: the Boyen-Koller projection error.
	MeanAbsDiff float64
}

// Clustering reproduces the clustering experiment. The German-trained
// network filters the noisier Belgian GP, once with all nodes in one
// cluster (exact interface filtering) and once with the query node
// split from the other non-observables, as Boyen and Koller propose.
func (l *Lab) Clustering() (*ClusteringResult, error) {
	fTrain, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, fTrain, fTrain.AudioObservations())
	if err != nil {
		return nil, err
	}
	fEval, err := l.Features(synth.BelgianGP)
	if err != nil {
		return nil, err
	}
	obs := fEval.AudioObservations()
	race := l.Race(synth.BelgianGP)
	score := func(cl dbn.Clusters) (eval.PR, []float64, error) {
		res, err := d.Filter(obs, cl)
		if err != nil {
			return eval.PR{}, nil, err
		}
		series, err := res.MarginalSeries(NodeEA, 1)
		if err != nil {
			return eval.PR{}, nil, err
		}
		return scoreExcitement(series, race), series, nil
	}
	exact, exactSeries, err := score(nil)
	if err != nil {
		return nil, err
	}
	clustered, clusteredSeries, err := score(dbn.Clusters{{NodeEA}, {NodeSA}, {NodeVS}})
	if err != nil {
		return nil, err
	}
	diff := 0.0
	for i := range exactSeries {
		d := exactSeries[i] - clusteredSeries[i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if len(exactSeries) > 0 {
		diff /= float64(len(exactSeries))
	}
	return &ClusteringResult{
		Exact: exact, Clustered: clustered,
		ExactMisclassified:     exact.FP,
		ClusteredMisclassified: clustered.FP,
		MeanAbsDiff:            diff,
	}, nil
}

// AudioVsAVResult is the §6 conclusion check: the audio DBN alone
// covers about half the interesting segments, the audio-visual DBN
// about 80%.
type AudioVsAVResult struct {
	AudioCoverage, AVCoverage float64
}

// AudioVsAV measures highlight coverage by the audio-only and the
// audio-visual DBN on the German GP.
func (l *Lab) AudioVsAV() (*AudioVsAVResult, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return nil, err
	}
	race := l.Race(synth.GermanGP)
	obs := f.AudioObservations()
	d, err := l.trainAudioDBN(FullyParameterized, TemporalFig8, f, obs)
	if err != nil {
		return nil, err
	}
	res, err := d.Filter(obs, nil)
	if err != nil {
		return nil, err
	}
	audioSeries, err := res.MarginalSeries(NodeEA, 1)
	if err != nil {
		return nil, err
	}
	audioSegs := eval.Segments(audioSeries, excitedSegConfig)

	dav, err := l.trainAVDBN(true)
	if err != nil {
		return nil, err
	}
	avRes, err := l.evalAV(dav, synth.GermanGP, true)
	if err != nil {
		return nil, err
	}
	audioPR := eval.Score(audioSegs, race.Highlights)
	return &AudioVsAVResult{
		AudioCoverage: audioPR.Recall,
		AVCoverage:    avRes.Highlight.Recall,
	}, nil
}

// KeywordModelResult compares the two candidate acoustic models of
// §5.2 on the German GP commentary.
type KeywordModelResult struct {
	CleanRecall, TVNewsRecall       float64
	CleanPrecision, TVNewsPrecision float64
}

// KeywordModels reproduces the acoustic-model comparison: the TV-news
// model beats the clean-speech model on broadcast commentary.
func (l *Lab) KeywordModels() (*KeywordModelResult, error) {
	race := l.Race(synth.GermanGP)
	spotter, err := keyword.NewSpotter(synth.ExcitedKeywords)
	if err != nil {
		return nil, err
	}
	spotter.Threshold = 0.55
	keywordSet := map[string]bool{}
	for _, k := range synth.ExcitedKeywords {
		keywordSet[k] = true
	}
	// Ground truth: keyword utterances with their times.
	type truthHit struct {
		word string
		time float64
	}
	var truth []truthHit
	for _, u := range race.Utterances {
		if keywordSet[u.Word] {
			truth = append(truth, truthHit{word: u.Word, time: u.Time})
		}
	}
	score := func(m keyword.AcousticModel, seedOffset int64) (recall, precision float64) {
		rng := rand.New(rand.NewSource(l.Cfg.Seed + seedOffset))
		stream := keyword.SimulateStream(race.Utterances, m, rng)
		hits := spotter.Spot(stream)
		found := 0
		for _, th := range truth {
			for _, h := range hits {
				if h.Word == th.word && h.Start >= th.time-0.5 && h.Start <= th.time+1.5 {
					found++
					break
				}
			}
		}
		correct := 0
		for _, h := range hits {
			ok := false
			for _, th := range truth {
				if h.Word == th.word && h.Start >= th.time-0.5 && h.Start <= th.time+1.5 {
					ok = true
					break
				}
			}
			if ok {
				correct++
			}
		}
		if len(truth) > 0 {
			recall = float64(found) / float64(len(truth))
		}
		if len(hits) > 0 {
			precision = float64(correct) / float64(len(hits))
		}
		return recall, precision
	}
	out := &KeywordModelResult{}
	out.CleanRecall, out.CleanPrecision = score(keyword.CleanSpeech, 101)
	out.TVNewsRecall, out.TVNewsPrecision = score(keyword.TVNews, 102)
	return out, nil
}

// ShotAccuracy measures the §5.3 claim that the histogram shot
// detector exceeds 90% accuracy: recall of true boundaries within a
// 0.5 s tolerance.
func (l *Lab) ShotAccuracy() (float64, error) {
	f, err := l.Features(synth.GermanGP)
	if err != nil {
		return 0, err
	}
	race := l.Race(synth.GermanGP)
	hit := 0
	for _, truth := range race.ShotBoundaries {
		for _, det := range f.ShotBoundaries {
			if math.Abs(det-truth) <= 0.5 {
				hit++
				break
			}
		}
	}
	if len(race.ShotBoundaries) == 0 {
		return 0, nil
	}
	return float64(hit) / float64(len(race.ShotBoundaries)), nil
}
