// Package f1 is the Formula 1 case study application (§5): it wires
// the feature extractors to the broadcast simulator, defines the
// paper's Bayesian-network structures (Figs. 7, 8, 10, 11), and drives
// every experiment of §5.5 (Tables 1-4, Fig. 9 and the temporal /
// clustering studies).
package f1

import (
	"math/rand"

	"cobra/internal/audio"
	"cobra/internal/eval"
	"cobra/internal/keyword"
	"cobra/internal/synth"
	"cobra/internal/video"
	"cobra/internal/vtext"
)

// ClipDur is the evidence sampling period: parameters are calculated
// for each 0.1 s (§5.5).
const ClipDur = 0.1

// Features holds the per-clip feature series f1..f17 of §5.5, each
// normalized to [0, 1], plus the speech mask and recognized captions.
type Features struct {
	Race *synth.Race
	N    int // clips

	Keywords   []float64 // f1
	PauseRate  []float64 // f2
	STEAvg     []float64 // f3
	STEDyn     []float64 // f4
	STEMax     []float64 // f5
	PitchAvg   []float64 // f6
	PitchDyn   []float64 // f7
	PitchMax   []float64 // f8
	MFCCAvg    []float64 // f9
	MFCCMax    []float64 // f10
	PartOfRace []float64 // f11
	Replay     []float64 // f12
	ColorDiff  []float64 // f13
	Semaphore  []float64 // f14
	Dust       []float64 // f15
	Sand       []float64 // f16
	Motion     []float64 // f17
	// Passing is the motion-histogram passing cue feeding the passing
	// sub-network.
	Passing []float64

	// Speech marks clips the endpoint detector classified as speech.
	Speech []bool

	// Captions are the recognized superimposed-text hits with their
	// clip times.
	Captions []CaptionHit

	// ShotBoundaries are detected shot starts in seconds.
	ShotBoundaries []float64
}

// CaptionHit is a recognized caption word at a time.
type CaptionHit struct {
	Word  string
	Time  float64
	Score float64
}

// Options tunes extraction cost.
type Options struct {
	// SkipVideo disables frame rendering and visual features (audio
	// experiments don't need them).
	SkipVideo bool
	// SkipText disables caption recognition.
	SkipText bool
	// Seed drives the simulated acoustic front-end.
	Seed int64
}

// Extract runs the full §5.2-5.4 pipeline over a simulated race.
func Extract(race *synth.Race, opt Options) (*Features, error) {
	n := int(race.Duration / ClipDur)
	f := &Features{Race: race, N: n}
	if err := f.extractAudio(race); err != nil {
		return nil, err
	}
	f.extractKeywords(race, opt.Seed)
	f.PartOfRace = make([]float64, n)
	for i := range f.PartOfRace {
		f.PartOfRace[i] = float64(i) / float64(n)
	}
	if !opt.SkipVideo {
		f.extractVideo(race, !opt.SkipText)
	} else {
		for _, p := range []*[]float64{&f.Replay, &f.ColorDiff, &f.Semaphore, &f.Dust, &f.Sand, &f.Motion, &f.Passing} {
			*p = make([]float64, n)
		}
	}
	return f, nil
}

// Normalization scales mapping raw measurements into [0, 1]; values
// are calibrated against the synthesizer's signal levels (the paper's
// Matlab pipeline performed the equivalent scaling before the network).
// Calibrated against the simulator: calm speech sits near zero and
// excited speech lands in the top evidence level.
func normSTE(x float64) float64   { return clamp01(x / 0.003) }
func normPitch(x float64) float64 { return clamp01((x - 170) / 140) }
func normMFCC(x float64) float64  { return clamp01((-120 - x) / 80) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (f *Features) extractAudio(race *synth.Race) error {
	an, err := audio.NewAnalyzer(audio.DefaultConfig())
	if err != nil {
		return err
	}
	clips := an.Analyze(race.RenderAudio())
	alloc := func() []float64 { return make([]float64, f.N) }
	f.PauseRate, f.STEAvg, f.STEDyn, f.STEMax = alloc(), alloc(), alloc(), alloc()
	f.PitchAvg, f.PitchDyn, f.PitchMax = alloc(), alloc(), alloc()
	f.MFCCAvg, f.MFCCMax = alloc(), alloc()
	f.Speech = make([]bool, f.N)
	for i := 0; i < f.N && i < len(clips); i++ {
		c := clips[i]
		f.Speech[i] = c.Speech
		if !c.Speech {
			// Excited-speech features are computed on speech segments
			// only (§5.2); non-speech clips carry neutral zeros.
			f.PauseRate[i] = 1
			continue
		}
		f.PauseRate[i] = c.PauseRate
		f.STEAvg[i] = normSTE(c.STEAvg)
		f.STEDyn[i] = normSTE(c.STEDyn * 2)
		f.STEMax[i] = normSTE(c.STEMax)
		f.PitchAvg[i] = normPitch(c.PitchAvg)
		f.PitchDyn[i] = clamp01(c.PitchDyn / 300)
		f.PitchMax[i] = normPitch(c.PitchMax)
		f.MFCCAvg[i] = normMFCC(c.MFCCAvg)
		f.MFCCMax[i] = normMFCC(c.MFCCMax)
	}
	return nil
}

func (f *Features) extractKeywords(race *synth.Race, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ race.Seed))
	spotter, err := keyword.NewSpotter(synth.ExcitedKeywords)
	if err != nil {
		panic(err) // static keyword list is always valid
	}
	// A slightly conservative acceptance threshold keeps random word
	// fragments from spoofing excited keywords.
	spotter.Threshold = 0.55
	stream := keyword.SimulateStream(race.Utterances, keyword.TVNews, rng)
	hits := spotter.Normalize(spotter.Spot(stream))
	f.Keywords = keyword.EvidenceSeries(hits, f.N, ClipDur)
}

// extractVideo renders frames at 10 fps and runs the visual and text
// chains.
func (f *Features) extractVideo(race *synth.Race, withText bool) {
	n := f.N
	f.Replay = make([]float64, n)
	f.ColorDiff = make([]float64, n)
	f.Semaphore = make([]float64, n)
	f.Dust = make([]float64, n)
	f.Sand = make([]float64, n)
	f.Motion = make([]float64, n)
	f.Passing = make([]float64, n)

	shotDet := video.NewShotDetector(video.DefaultShotConfig())
	dveDet := video.NewDVEDetector()
	replayDet := video.NewReplayDetector()
	var semTracker video.SemaphoreTracker
	textDet := vtext.NewDetector(5)
	var rec *vtext.Recognizer
	if withText {
		lex := append(append([]string(nil), synth.Drivers...),
			"PIT", "STOP", "LAP", "WINNER", "FINAL", "1")
		rec = vtext.NewRecognizer(lex, 0.7)
	}

	var prev *video.Frame
	var bandFrames []*video.Frame
	bandStart := 0
	for i := 0; i < n; i++ {
		t := float64(i) * ClipDur
		frame := race.RenderFrame(t)
		shotDet.Feed(frame)

		sem := video.DetectSemaphore(frame)
		semTracker.Feed(sem)
		if sem.Present {
			f.Semaphore[i] = clamp01(sem.Fill)
		}
		sd := video.DetectSandDust(frame)
		f.Sand[i] = clamp01(4 * sd.SandFraction)
		f.Dust[i] = clamp01(6 * sd.DustFraction)

		if prev != nil {
			f.ColorDiff[i] = video.MotionAmount(prev, frame)
			mf := video.EstimateMotion(prev, frame, 3)
			f.Motion[i] = clamp01(f.ColorDiff[i] * 8)
			f.Passing[i] = video.PassingProbability(video.MotionHistogram(mf, 3))
			if dveDet.Feed(mf) {
				replayDet.FeedDVE(i)
			}
		}
		prev = frame

		if withText {
			sr := vtext.AnalyzeBand(frame)
			if sr.Present {
				if len(bandFrames) == 0 {
					bandStart = i
				}
				if len(bandFrames) < 8 {
					bandFrames = append(bandFrames, frame)
				}
			}
			if textDet.Feed(sr) && len(bandFrames) > 0 {
				f.recognizeCaption(rec, bandFrames, bandStart)
				bandFrames = nil
			}
			if !sr.Present {
				bandFrames = nil
			}
		}
	}
	if withText {
		textDet.Flush()
		if len(bandFrames) >= 5 {
			f.recognizeCaption(rec, bandFrames, bandStart)
		}
	}
	// Replay probabilities from paired DVEs.
	f.Replay = video.ReplayProbability(replayDet.Segments, n)
	for _, b := range shotDet.Boundaries {
		f.ShotBoundaries = append(f.ShotBoundaries, float64(b)*ClipDur)
	}
}

func (f *Features) recognizeCaption(rec *vtext.Recognizer, frames []*video.Frame, startClip int) {
	g := vtext.MinFilterBand(frames)
	g = vtext.Interpolate4x(g)
	band := vtext.Binarize(g, 170)
	for _, h := range rec.RecognizeBand(band) {
		f.Captions = append(f.Captions, CaptionHit{
			Word:  h.Word,
			Time:  float64(startClip) * ClipDur,
			Score: h.Score,
		})
	}
}

// AudioExcitementScore aggregates the audio features into a single
// diagnostic series (used for sanity checks and the quickstart
// example): high when loud, high-pitched continuous speech occurs.
func (f *Features) AudioExcitementScore() []float64 {
	out := make([]float64, f.N)
	for i := 0; i < f.N; i++ {
		if !f.Speech[i] {
			continue
		}
		out[i] = clamp01(0.35*f.PitchAvg[i] + 0.3*f.STEAvg[i] + 0.2*(1-f.PauseRate[i]) + 0.15*f.Keywords[i])
	}
	return out
}

// GroundTruthExcitement returns the race's excited-speech segments.
func (f *Features) GroundTruthExcitement() []eval.Segment { return f.Race.Excitement }

// GroundTruthHighlights returns the race's interesting segments.
func (f *Features) GroundTruthHighlights() []eval.Segment { return f.Race.Highlights }

// Quantize3 maps a [0,1] series to 3 evidence levels with the fixed
// thresholds used by all networks.
func Quantize3(series []float64) []int {
	out := make([]int, len(series))
	for i, v := range series {
		switch {
		case v < 0.22:
			out[i] = 0
		case v < 0.55:
			out[i] = 1
		default:
			out[i] = 2
		}
	}
	return out
}
