package f1

import (
	"testing"

	"cobra/internal/eval"
	"cobra/internal/synth"
)

// testLab builds a small-scale lab shared by the package tests.
func testLab(t *testing.T) *Lab {
	t.Helper()
	cfg := DefaultExpConfig()
	cfg.RaceDur = 220
	cfg.TrainDur = 120
	cfg.TrainSegments = 6
	cfg.EMIterations = 4
	return NewLab(cfg)
}

func TestExtractShapes(t *testing.T) {
	race := synth.GenerateRace(synth.GermanGP, 60, 7)
	f, err := Extract(race, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 600 {
		t.Fatalf("N = %d", f.N)
	}
	for name, s := range map[string][]float64{
		"Keywords": f.Keywords, "PauseRate": f.PauseRate,
		"STEAvg": f.STEAvg, "PitchAvg": f.PitchAvg, "MFCCAvg": f.MFCCAvg,
		"PartOfRace": f.PartOfRace, "Replay": f.Replay, "Semaphore": f.Semaphore,
		"Dust": f.Dust, "Sand": f.Sand, "Motion": f.Motion, "Passing": f.Passing,
	} {
		if len(s) != f.N {
			t.Fatalf("%s length %d", name, len(s))
		}
		for i, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("%s[%d] = %v out of [0,1]", name, i, v)
			}
		}
	}
	speech := 0
	for _, b := range f.Speech {
		if b {
			speech++
		}
	}
	if speech < f.N/10 || speech > f.N*9/10 {
		t.Fatalf("speech fraction %d/%d implausible", speech, f.N)
	}
}

func TestExtractSkipVideo(t *testing.T) {
	race := synth.GenerateRace(synth.GermanGP, 30, 7)
	f, err := Extract(race, Options{Seed: 7, SkipVideo: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Semaphore {
		if v != 0 {
			t.Fatal("video features should be zero with SkipVideo")
		}
	}
	if len(f.Captions) != 0 {
		t.Fatal("captions with SkipVideo")
	}
}

func TestQuantize3(t *testing.T) {
	q := Quantize3([]float64{0, 0.21, 0.23, 0.54, 0.56, 1})
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v", q)
		}
	}
}

func TestAudioNetworkStructures(t *testing.T) {
	for _, s := range []BNStructure{FullyParameterized, DirectEvidence, InputOutput} {
		net := NewAudioSlice(s)
		if _, ok := net.Index(NodeEA); !ok {
			t.Fatalf("%v: no EA node", s)
		}
		for _, name := range AudioEvidenceNames {
			if _, ok := net.Index(name); !ok {
				t.Fatalf("%v: missing evidence %s", s, name)
			}
		}
		for _, v := range []TemporalVariant{TemporalFig8, TemporalToQuery, TemporalCorresponding} {
			d, err := NewAudioDBN(s, v)
			if err != nil {
				t.Fatalf("%v/%v: %v", s, v, err)
			}
			if d.StateSpaceSize() > 64 {
				t.Fatalf("%v: state space %d too large", s, d.StateSpaceSize())
			}
		}
	}
}

func TestAVNetworkStructures(t *testing.T) {
	for _, withPassing := range []bool{true, false} {
		d, err := NewAVDBN(withPassing)
		if err != nil {
			t.Fatal(err)
		}
		names := d.HiddenNames()
		hasPassing := false
		for _, n := range names {
			if n == NodePassing {
				hasPassing = true
			}
		}
		if hasPassing != withPassing {
			t.Fatalf("withPassing=%v but hidden=%v", withPassing, names)
		}
	}
}

func TestObservationArity(t *testing.T) {
	race := synth.GenerateRace(synth.GermanGP, 30, 7)
	f, err := Extract(race, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	obs := f.AudioObservations()
	if len(obs) != f.N || len(obs[0]) != len(AudioEvidenceNames) {
		t.Fatalf("audio obs dims %dx%d", len(obs), len(obs[0]))
	}
	av := f.AVObservations(true)
	if len(av[0]) != 9 {
		t.Fatalf("AV obs arity %d, want 9", len(av[0]))
	}
	av = f.AVObservations(false)
	if len(av[0]) != 8 {
		t.Fatalf("AV obs arity %d, want 8", len(av[0]))
	}
	// Observations must be consumable by the corresponding networks.
	d, err := NewAudioDBN(FullyParameterized, TemporalFig8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Filter(obs[:50], nil); err != nil {
		t.Fatalf("audio obs rejected: %v", err)
	}
}

// TestTable1Shape locks the paper's core finding: the DBN beats every
// static BN structure on emphasized-speech detection.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	rows, err := l.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	dbnRow := rows[3]
	for _, bn := range rows[:3] {
		if dbnRow.Recall < bn.Recall-0.15 {
			t.Errorf("DBN recall %v clearly below %s recall %v", dbnRow.Recall, bn.Name, bn.Recall)
		}
	}
	if dbnRow.F1() < 0.5 {
		t.Errorf("DBN F1 %v too low", dbnRow.F1())
	}
}

// F1 on a Row for test assertions.
func (r Row) F1() float64 {
	if r.Precision+r.Recall == 0 {
		return 0
	}
	return 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
}

// TestTable4Shape locks the passing sub-network crossover: the Belgian
// GP with the passing net has clearly lower highlight precision than
// the German GP, and the USA GP without it recovers.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	rows3, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	rows4, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	german := rows3[0]
	belgian := rows4[0]
	usa := rows4[4]
	if belgian.Precision >= german.Precision {
		t.Errorf("belgian precision %v not below german %v", belgian.Precision, german.Precision)
	}
	if usa.Precision <= belgian.Precision {
		t.Errorf("usa precision %v not above belgian %v", usa.Precision, belgian.Precision)
	}
	// Footnote 3: no fly-outs in the USA GP.
	usaFlyout := rows4[6]
	if usaFlyout.Precision != 0 || usaFlyout.Recall != 0 {
		t.Errorf("usa flyout = %v/%v, want 0/0", usaFlyout.Precision, usaFlyout.Recall)
	}
}

// TestFig9Shape locks the smoothness comparison.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	r, err := l.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if r.DBNRough >= r.BNRough {
		t.Errorf("DBN roughness %v not below BN %v", r.DBNRough, r.BNRough)
	}
	if len(r.BN) != len(r.DBN) {
		t.Errorf("series lengths differ")
	}
}

// TestAudioVsAVShape locks the §6 conclusion: fusing video roughly
// doubles highlight coverage over audio alone.
func TestAudioVsAVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	r, err := l.AudioVsAV()
	if err != nil {
		t.Fatal(err)
	}
	if r.AVCoverage <= r.AudioCoverage {
		t.Errorf("AV coverage %v not above audio %v", r.AVCoverage, r.AudioCoverage)
	}
	if r.AVCoverage < 0.5 {
		t.Errorf("AV coverage %v too low", r.AVCoverage)
	}
}

func TestShotAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	acc, err := l.ShotAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("shot accuracy %v too low", acc)
	}
}

func TestSplitSegments(t *testing.T) {
	obs := make([][]int, 10)
	segs := splitSegments(obs, 3)
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	if len(splitSegments(obs, 0)) != 1 {
		t.Fatal("n=0 should give one segment")
	}
	if len(splitSegments(obs[:2], 5)) != 1 {
		t.Fatal("tiny input should give one segment")
	}
}

func TestAccumulateBN(t *testing.T) {
	series := make([]float64, 50)
	for i := 20; i < 30; i++ {
		series[i] = 1
	}
	acc := accumulateBN(series)
	if acc[29] <= acc[20] {
		t.Fatal("accumulation should rise through the burst")
	}
	if acc[0] != 0 {
		t.Fatal("leading zeros should stay zero")
	}
}

func TestScoreExcitementAdaptive(t *testing.T) {
	race := synth.GenerateRace(synth.GermanGP, 200, 3)
	series := make([]float64, 2000)
	for _, s := range race.Excitement {
		for i := int(s.Start * 10); i < int(s.End*10) && i < len(series); i++ {
			series[i] = 0.45 // below the fixed 0.5 threshold
		}
	}
	pr := scoreExcitementAdaptive(series, race)
	if pr.Recall == 0 {
		t.Fatal("adaptive threshold failed to catch sub-0.5 plateaus")
	}
	_ = eval.PR{}
}

// TestAnchorAblationShape locks the anchoring design decision: plain
// EM must not beat anchored EM on highlight recall (it decouples the
// sub-event nodes from the query node).
func TestAnchorAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	l := testLab(t)
	rows, err := l.AnchorAblation()
	if err != nil {
		t.Fatal(err)
	}
	anchored, plain := rows[0], rows[1]
	if anchored.Recall < plain.Recall-0.05 {
		t.Errorf("anchored recall %v below plain %v", anchored.Recall, plain.Recall)
	}
}

func TestQuantizeN(t *testing.T) {
	q := QuantizeN([]float64{0, 0.49, 0.51, 1, -0.2, 1.5}, 2)
	want := []int{0, 0, 1, 1, 0, 1}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v", q)
		}
	}
	if got := QuantizeN([]float64{0.99}, 4)[0]; got != 3 {
		t.Fatalf("4-level top = %d", got)
	}
}

func TestMonotoneShape(t *testing.T) {
	for _, levels := range []int{2, 3, 5} {
		up := monotoneShape(levels, true, 0.5)
		down := monotoneShape(levels, false, 0.5)
		sumU, sumD := 0.0, 0.0
		for i := 0; i < levels; i++ {
			sumU += up[i]
			sumD += down[i]
			if i > 0 {
				if up[i] < up[i-1] {
					t.Fatalf("up shape not increasing: %v", up)
				}
				if down[i] > down[i-1] {
					t.Fatalf("down shape not decreasing: %v", down)
				}
			}
		}
		if sumU < 0.999 || sumU > 1.001 || sumD < 0.999 || sumD > 1.001 {
			t.Fatalf("shapes not normalized: %v %v", sumU, sumD)
		}
	}
}
