package f1

import (
	"fmt"
	"sort"
	"sync"

	"cobra/internal/cobra"
	"cobra/internal/dbn"
	"cobra/internal/eval"
	"cobra/internal/rules"
	"cobra/internal/synth"
)

// FeatureNames lists the catalog names of the materialized feature
// streams, in the order of §5.5's f1..f17 plus the passing cue and the
// aggregate audio excitement score.
var FeatureNames = []string{
	"keywords", "pauserate",
	"steavg", "stedyn", "stemax",
	"pitchavg", "pitchdyn", "pitchmax",
	"mfccavg", "mfccmax",
	"partofrace", "replay", "colordiff", "semaphore", "dust", "sand", "motion",
	"passing", "audioex",
}

// Event types materialized by the extraction engines.
const (
	EventHighlight = "highlight"
	EventStart     = "start"
	EventFlyOut    = "flyout"
	EventPassing   = "passing"
	EventExcited   = "excited"
	EventCaption   = "caption"
	EventPitStop   = "pitstop"
	EventWinner    = "winner"
)

// Corpus owns the simulated broadcast material (the raw-data layer of
// the model) and exposes the paper's extraction engines to the query
// preprocessor. Feature extraction and network training are cached.
type Corpus struct {
	cfg ExpConfig

	mu     sync.Mutex
	races  map[string]*synth.Race
	feats  map[string]*Features
	avDBN  *dbn.DBN
	audDBN *dbn.DBN
}

// NewCorpus builds a corpus with the three 2001 races at the
// configured scale.
func NewCorpus(cfg ExpConfig) *Corpus {
	c := &Corpus{cfg: cfg, races: map[string]*synth.Race{}, feats: map[string]*Features{}}
	for _, p := range []synth.Profile{synth.GermanGP, synth.BelgianGP, synth.USAGP} {
		c.races[p.Name+"-gp"] = synth.GenerateRace(p, cfg.RaceDur, cfg.Seed)
	}
	return c
}

// AddRace registers additional material under the given video name.
func (c *Corpus) AddRace(name string, race *synth.Race) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.races[name] = race
}

// Race returns the registered race for a video name.
func (c *Corpus) Race(name string) (*synth.Race, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.races[name]
	return r, ok
}

// IngestVideos registers every race as a raw-layer video.
func (c *Corpus) IngestVideos(cat *cobra.Catalog) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, r := range c.races {
		if err := cat.PutVideo(cobra.Video{Name: name, Duration: r.Duration, FPS: synth.FPS}); err != nil {
			return err
		}
	}
	return nil
}

// features lazily extracts and caches the feature set for a video.
func (c *Corpus) features(video string) (*Features, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.feats[video]; ok {
		return f, nil
	}
	race, ok := c.races[video]
	if !ok {
		return nil, fmt.Errorf("f1: no raw material for video %q", video)
	}
	f, err := Extract(race, Options{Seed: c.cfg.Seed})
	if err != nil {
		return nil, err
	}
	c.feats[video] = f
	return f, nil
}

// trainingVideo returns the video the networks are trained on (the
// German GP, as in the paper).
func (c *Corpus) trainingVideo() string { return synth.GermanGP.Name + "-gp" }

// avModel lazily trains the audio-visual DBN on the German GP prefix.
func (c *Corpus) avModel() (*dbn.DBN, error) {
	c.mu.Lock()
	cached := c.avDBN
	c.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	f, err := c.features(c.trainingVideo())
	if err != nil {
		return nil, err
	}
	d, err := NewAVDBN(true)
	if err != nil {
		return nil, err
	}
	obs := f.AVObservations(true)
	n := int(c.cfg.TrainDur / ClipDur)
	if n > len(obs) {
		n = len(obs)
	}
	cfg := dbn.DefaultEMConfig()
	cfg.MaxIterations = c.cfg.EMIterations
	cfg.Anchor = 60
	if _, err := d.LearnEM(splitSegments(obs[:n], 6), cfg); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.avDBN = d
	c.mu.Unlock()
	return d, nil
}

// audioModel lazily trains the audio DBN on the German GP prefix.
func (c *Corpus) audioModel() (*dbn.DBN, error) {
	c.mu.Lock()
	cached := c.audDBN
	c.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	f, err := c.features(c.trainingVideo())
	if err != nil {
		return nil, err
	}
	d, err := NewAudioDBN(FullyParameterized, TemporalFig8)
	if err != nil {
		return nil, err
	}
	obs := f.AudioObservations()
	n := int(c.cfg.TrainDur / ClipDur)
	if n > len(obs) {
		n = len(obs)
	}
	cfg := dbn.DefaultEMConfig()
	cfg.MaxIterations = c.cfg.EMIterations
	cfg.Anchor = 10
	if _, err := d.LearnEM(splitSegments(obs[:n], c.cfg.TrainSegments), cfg); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.audDBN = d
	c.mu.Unlock()
	return d, nil
}

// RegisterExtractors installs the extraction engines on a
// preprocessor: the video-processing/feature engine, the text
// detection/recognition engine, the audio and audio-visual DBN
// engines, and the rule engine deriving pit stops and winners from
// captions.
func (c *Corpus) RegisterExtractors(pre *cobra.Preprocessor) {
	featureReqs := make([]cobra.Requirement, len(FeatureNames))
	for i, n := range FeatureNames {
		featureReqs[i] = cobra.Requirement{Kind: cobra.NeedFeature, Name: n}
	}
	pre.Register(cobra.ExtractorFunc{
		EngineName: "video-processing",
		Outputs:    featureReqs,
		CostVal:    10, QualityVal: 0.9,
		Fn: c.extractFeatures,
	})
	pre.Register(cobra.ExtractorFunc{
		EngineName: "text-recognition",
		Outputs:    []cobra.Requirement{{Kind: cobra.NeedEvents, Name: EventCaption}},
		CostVal:    6, QualityVal: 0.9,
		Fn: c.extractCaptions,
	})
	pre.Register(cobra.ExtractorFunc{
		EngineName: "audio-dbn",
		Outputs:    []cobra.Requirement{{Kind: cobra.NeedEvents, Name: EventExcited}},
		CostVal:    8, QualityVal: 0.85,
		Fn: c.extractExcited,
	})
	pre.Register(cobra.ExtractorFunc{
		EngineName: "av-dbn",
		Outputs: []cobra.Requirement{
			{Kind: cobra.NeedEvents, Name: EventHighlight},
			{Kind: cobra.NeedEvents, Name: EventStart},
			{Kind: cobra.NeedEvents, Name: EventFlyOut},
			{Kind: cobra.NeedEvents, Name: EventPassing},
		},
		CostVal: 12, QualityVal: 0.85,
		Fn: c.extractHighlights,
	})
	pre.Register(cobra.ExtractorFunc{
		EngineName: "object-tracking",
		Outputs:    []cobra.Requirement{{Kind: cobra.NeedObjects, Name: ""}},
		CostVal:    2, QualityVal: 0.7,
		Fn: c.deriveObjects,
	})
	pre.Register(cobra.ExtractorFunc{
		EngineName: "caption-rules",
		Outputs: []cobra.Requirement{
			{Kind: cobra.NeedEvents, Name: EventPitStop},
			{Kind: cobra.NeedEvents, Name: EventWinner},
		},
		CostVal: 1, QualityVal: 0.9,
		Fn: c.deriveCaptionEvents,
	})
}

// extractFeatures materializes all feature streams.
func (c *Corpus) extractFeatures(cat *cobra.Catalog, video string) error {
	f, err := c.features(video)
	if err != nil {
		return err
	}
	series := map[string][]float64{
		"keywords": f.Keywords, "pauserate": f.PauseRate,
		"steavg": f.STEAvg, "stedyn": f.STEDyn, "stemax": f.STEMax,
		"pitchavg": f.PitchAvg, "pitchdyn": f.PitchDyn, "pitchmax": f.PitchMax,
		"mfccavg": f.MFCCAvg, "mfccmax": f.MFCCMax,
		"partofrace": f.PartOfRace, "replay": f.Replay, "colordiff": f.ColorDiff,
		"semaphore": f.Semaphore, "dust": f.Dust, "sand": f.Sand, "motion": f.Motion,
		"passing": f.Passing, "audioex": f.AudioExcitementScore(),
	}
	for name, vals := range series {
		if err := cat.PutFeature(cobra.Feature{
			Video: video, Name: name, SampleRate: 1 / ClipDur, Values: vals,
		}); err != nil {
			return err
		}
	}
	return nil
}

// extractCaptions materializes recognized superimposed-text words as
// caption events.
func (c *Corpus) extractCaptions(cat *cobra.Catalog, video string) error {
	f, err := c.features(video)
	if err != nil {
		return err
	}
	var events []cobra.Event
	for _, h := range f.Captions {
		events = append(events, cobra.Event{
			Video: video, Type: EventCaption,
			Interval:   cobra.Interval{Start: h.Time, End: h.Time + 1},
			Confidence: h.Score,
			Attrs:      map[string]string{"word": h.Word},
		})
	}
	if len(events) == 0 {
		// Materialize an explicit empty marker so availability checks
		// don't re-run the engine... the catalog has no empty marker,
		// so store a sentinel with zero confidence.
		events = append(events, cobra.Event{
			Video: video, Type: EventCaption,
			Interval:   cobra.Interval{Start: 0, End: 0.1},
			Confidence: 0,
			Attrs:      map[string]string{"word": ""},
		})
	}
	return cat.PutEvents(video, events)
}

// Model persistence prefixes: trained parameters live in the database
// (§2: domain knowledge stored within the DB) and survive snapshots.
const (
	audioModelPrefix = "cobra/model/audio-dbn"
	avModelPrefix    = "cobra/model/av-dbn"
)

// loadOrTrainAudio returns the audio DBN, preferring parameters saved
// in the catalog's store over retraining.
func (c *Corpus) loadOrTrainAudio(cat *cobra.Catalog) (*dbn.DBN, error) {
	probe, err := NewAudioDBN(FullyParameterized, TemporalFig8)
	if err != nil {
		return nil, err
	}
	if probe.HasParams(cat.Store(), audioModelPrefix) {
		if err := probe.LoadParams(cat.Store(), audioModelPrefix); err == nil {
			return probe, nil
		}
	}
	d, err := c.audioModel()
	if err != nil {
		return nil, err
	}
	d.SaveParams(cat.Store(), audioModelPrefix)
	return d, nil
}

// loadOrTrainAV is loadOrTrainAudio for the audio-visual network.
func (c *Corpus) loadOrTrainAV(cat *cobra.Catalog) (*dbn.DBN, error) {
	probe, err := NewAVDBN(true)
	if err != nil {
		return nil, err
	}
	if probe.HasParams(cat.Store(), avModelPrefix) {
		if err := probe.LoadParams(cat.Store(), avModelPrefix); err == nil {
			return probe, nil
		}
	}
	d, err := c.avModel()
	if err != nil {
		return nil, err
	}
	d.SaveParams(cat.Store(), avModelPrefix)
	return d, nil
}

// extractExcited runs the audio DBN over the race and materializes
// excited-speech events.
func (c *Corpus) extractExcited(cat *cobra.Catalog, video string) error {
	f, err := c.features(video)
	if err != nil {
		return err
	}
	d, err := c.loadOrTrainAudio(cat)
	if err != nil {
		return err
	}
	res, err := d.Filter(f.AudioObservations(), nil)
	if err != nil {
		return err
	}
	series, err := res.MarginalSeries(NodeEA, 1)
	if err != nil {
		return err
	}
	var events []cobra.Event
	for _, s := range eval.Segments(series, excitedSegConfig) {
		events = append(events, cobra.Event{
			Video: video, Type: EventExcited,
			Interval:   cobra.Interval{Start: s.Start, End: s.End},
			Confidence: meanOver(series, s.Start, s.End),
		})
	}
	if len(events) == 0 {
		events = append(events, cobra.Event{Video: video, Type: EventExcited,
			Interval: cobra.Interval{Start: 0, End: 0.1}, Confidence: 0})
	}
	return cat.PutEvents(video, events)
}

// extractHighlights runs the audio-visual DBN and materializes
// highlights with attributed sub-events.
func (c *Corpus) extractHighlights(cat *cobra.Catalog, video string) error {
	f, err := c.features(video)
	if err != nil {
		return err
	}
	d, err := c.loadOrTrainAV(cat)
	if err != nil {
		return err
	}
	res, err := d.Filter(f.AVObservations(true), nil)
	if err != nil {
		return err
	}
	hSeries, err := res.MarginalSeries(NodeHighlight, 1)
	if err != nil {
		return err
	}
	highlights := eval.Segments(hSeries, highlightSegConfig)
	series := map[string][]float64{}
	for _, node := range []string{NodeStart, NodeFlyOut, NodePassing} {
		s, err := res.MarginalSeries(node, 1)
		if err != nil {
			return err
		}
		series[labelOf(node)] = liftSeries(s)
	}
	var events []cobra.Event
	for _, h := range highlights {
		events = append(events, cobra.Event{
			Video: video, Type: EventHighlight,
			Interval:   cobra.Interval{Start: h.Start, End: h.End},
			Confidence: meanOver(hSeries, h.Start, h.End),
		})
	}
	attr := eval.Attribution{Series: series, StepDur: ClipDur, MinProb: 0.2}
	for _, s := range attr.Attribute(highlights) {
		events = append(events, cobra.Event{
			Video: video, Type: s.Label,
			Interval:   cobra.Interval{Start: s.Start, End: s.End},
			Confidence: meanOver(series[s.Label], s.Start, s.End),
		})
	}
	// Guarantee availability markers for every promised type.
	for _, typ := range []string{EventHighlight, EventStart, EventFlyOut, EventPassing} {
		found := false
		for _, e := range events {
			if e.Type == typ {
				found = true
				break
			}
		}
		if !found {
			events = append(events, cobra.Event{Video: video, Type: typ,
				Interval: cobra.Interval{Start: 0, End: 0.1}, Confidence: 0})
		}
	}
	return cat.PutEvents(video, events)
}

// deriveObjects materializes object-layer entities: each driver's
// appearance intervals, gathered from recognized caption mentions and
// driver-attributed events. (The paper notes that visual car tracking
// is future work — appearances come from the metadata the system can
// actually recognize.)
func (c *Corpus) deriveObjects(cat *cobra.Catalog, video string) error {
	if !cat.HasEvents(video, EventCaption) {
		if err := c.extractCaptions(cat, video); err != nil {
			return err
		}
	}
	appearances := map[string][]cobra.Interval{}
	for _, e := range cat.Events(video, EventCaption) {
		if isDriverName(e.Attr("word")) {
			// A driver caption implies the car is on screen around it.
			appearances[e.Attr("word")] = append(appearances[e.Attr("word")],
				cobra.Interval{Start: e.Interval.Start - 2, End: e.Interval.End + 4})
		}
	}
	for _, typ := range []string{EventPitStop, EventWinner} {
		for _, e := range cat.Events(video, typ) {
			if d := e.Attr("driver"); isDriverName(d) {
				appearances[d] = append(appearances[d], e.Interval)
			}
		}
	}
	stored := 0
	for driver, ivs := range appearances {
		if err := cat.PutObject(cobra.Object{
			Video: video, Name: driver, Class: "driver",
			Appearances: mergeIntervals(ivs),
		}); err != nil {
			return err
		}
		stored++
	}
	if stored == 0 {
		// Availability sentinel: no recognizable objects in this video.
		return cat.PutObject(cobra.Object{Video: video, Name: "_none", Class: "none"})
	}
	return nil
}

// mergeIntervals unions overlapping intervals.
func mergeIntervals(ivs []cobra.Interval) []cobra.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]cobra.Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []cobra.Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// deriveCaptionEvents runs the rule extension over caption events: a
// PIT caption next to a driver-name caption derives a pit stop; a
// WINNER caption next to a driver name derives the winner.
func (c *Corpus) deriveCaptionEvents(cat *cobra.Catalog, video string) error {
	// The rule engine needs caption facts; materialize them first.
	if !cat.HasEvents(video, EventCaption) {
		if err := c.extractCaptions(cat, video); err != nil {
			return err
		}
	}
	store := rules.NewStore()
	for _, e := range cat.Events(video, EventCaption) {
		word := e.Attr("word")
		typ := "caption-word"
		if isDriverName(word) {
			typ = "caption-driver"
		}
		store.Assert(rules.Event{
			Type: typ, Interval: e.Interval, Confidence: e.Confidence,
			Attrs: map[string]string{"word": word},
		})
	}
	nearby := []rules.Relation{
		rules.Overlaps, rules.OverlappedBy, rules.During, rules.Contains,
		rules.Starts, rules.StartedBy, rules.Finishes, rules.FinishedBy, rules.Equals,
	}
	pitRule := rules.Rule{
		Name: "pitstop-from-captions", Produces: EventPitStop,
		Patterns: []rules.Pattern{
			{Var: "d", Type: "caption-driver", MinConfidence: 0.3},
			{Var: "p", Type: "caption-word", Attrs: map[string]string{"word": "PIT"}, MinConfidence: 0.3},
		},
		Where:     []rules.TemporalConstraint{{A: "d", B: "p", Relations: nearby}},
		CopyAttrs: map[string]string{"driver": "d.word"},
	}
	winRule := rules.Rule{
		Name: "winner-from-captions", Produces: EventWinner,
		Patterns: []rules.Pattern{
			{Var: "d", Type: "caption-driver", MinConfidence: 0.3},
			{Var: "w", Type: "caption-word", Attrs: map[string]string{"word": "WINNER"}, MinConfidence: 0.3},
		},
		Where:     []rules.TemporalConstraint{{A: "d", B: "w", Relations: nearby}},
		CopyAttrs: map[string]string{"driver": "d.word"},
	}
	en, err := rules.NewEngine(pitRule, winRule)
	if err != nil {
		return err
	}
	en.Run(store)
	var events []cobra.Event
	for _, typ := range []string{EventPitStop, EventWinner} {
		for _, e := range store.Events(typ) {
			events = append(events, cobra.Event{
				Video: video, Type: typ, Interval: e.Interval,
				Confidence: e.Confidence,
				Attrs:      map[string]string{"driver": e.Attr("driver")},
			})
		}
		found := false
		for _, e := range events {
			if e.Type == typ {
				found = true
				break
			}
		}
		if !found {
			events = append(events, cobra.Event{Video: video, Type: typ,
				Interval: cobra.Interval{Start: 0, End: 0.1}, Confidence: 0})
		}
	}
	return cat.PutEvents(video, events)
}

func isDriverName(word string) bool {
	for _, d := range synth.Drivers {
		if d == word {
			return true
		}
	}
	return false
}

func meanOver(series []float64, start, end float64) float64 {
	lo := int(start / ClipDur)
	hi := int(end / ClipDur)
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	s := 0.0
	for i := lo; i < hi; i++ {
		s += series[i]
	}
	return s / float64(hi-lo)
}
