package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cobra/internal/monet"
)

// coin builds a 2-state model with distinct emissions.
func coin(name string, stay, emit float64) *Model {
	m := NewModel(name, 2, 2)
	m.Pi = []float64{0.5, 0.5}
	m.A = [][]float64{{stay, 1 - stay}, {1 - stay, stay}}
	m.B = [][]float64{{emit, 1 - emit}, {1 - emit, emit}}
	return m
}

// sample draws an observation sequence from the model.
func sample(m *Model, T int, rng *rand.Rand) []int {
	obs := make([]int, T)
	state := draw(m.Pi, rng)
	for t := 0; t < T; t++ {
		obs[t] = draw(m.B[state], rng)
		state = draw(m.A[state], rng)
	}
	return obs
}

func draw(p []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, v := range p {
		acc += v
		if r < acc {
			return i
		}
	}
	return len(p) - 1
}

func TestValidate(t *testing.T) {
	m := coin("ok", 0.9, 0.8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := coin("bad", 0.9, 0.8)
	bad.A[0][0] = 0.5 // row no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad A accepted")
	}
	empty := &Model{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestLogLikelihoodBruteForce(t *testing.T) {
	m := coin("x", 0.7, 0.8)
	obs := []int{0, 1, 0}
	// Brute-force enumeration over state paths.
	want := 0.0
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				want += m.Pi[s0] * m.B[s0][obs[0]] *
					m.A[s0][s1] * m.B[s1][obs[1]] *
					m.A[s1][s2] * m.B[s2][obs[2]]
			}
		}
	}
	got, err := m.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log(want)) > 1e-12 {
		t.Fatalf("ll = %v, want %v", got, math.Log(want))
	}
}

func TestLogLikelihoodValidation(t *testing.T) {
	m := coin("x", 0.7, 0.8)
	if _, err := m.LogLikelihood([]int{0, 5}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	ll, err := m.LogLikelihood(nil)
	if err != nil || ll != 0 {
		t.Fatalf("empty sequence = %v, %v", ll, err)
	}
}

func TestViterbiDecodesCleanSequence(t *testing.T) {
	// Near-deterministic model: the path should follow the symbols.
	m := coin("v", 0.99, 0.99)
	obs := []int{0, 0, 0, 1, 1, 1}
	path, lp, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("log prob = %v", lp)
	}
	if p, _, _ := m.Viterbi(nil); p != nil {
		t.Fatal("empty viterbi should return nil path")
	}
}

func TestTrainRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	truth := coin("truth", 0.9, 0.85)
	var seqs [][]int
	for i := 0; i < 20; i++ {
		seqs = append(seqs, sample(truth, 200, rng))
	}
	m := coin("learn", 0.6, 0.7) // biased init, same labeling
	res, err := m.Train(seqs, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("res = %+v", res)
	}
	if m.A[0][0] < 0.85 || m.A[1][1] < 0.85 {
		t.Fatalf("learned A not sticky: %v", m.A)
	}
	if m.B[0][0] < 0.75 || m.B[1][1] < 0.75 {
		t.Fatalf("learned B weak: %v", m.B)
	}
}

func TestTrainImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	truth := coin("truth", 0.8, 0.9)
	seqs := [][]int{sample(truth, 300, rng)}
	m := NewModel("learn", 2, 2)
	m.Randomize(rng)
	before, _ := m.LogLikelihood(seqs[0])
	if _, err := m.Train(seqs, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	after, _ := m.LogLikelihood(seqs[0])
	if after < before {
		t.Fatalf("training decreased LL %v -> %v", before, after)
	}
}

func TestEnginePoolClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	// Six "stroke" models with distinct emission signatures over 4
	// symbols, like the paper's six tennis-stroke HMMs.
	names := []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"}
	pool := NewEnginePool(7)
	models := map[string]*Model{}
	for i, name := range names {
		m := NewModel(name, 3, len(names))
		for s := 0; s < 3; s++ {
			for k := range m.B[s] {
				if k == i {
					m.B[s][k] = 0.75
				} else {
					m.B[s][k] = 0.25 / float64(len(names)-1)
				}
			}
		}
		models[name] = m
		if err := pool.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Models(); len(got) != 6 {
		t.Fatalf("models = %v", got)
	}
	// Sequences dominated by symbol i should classify as model i.
	for i, name := range names {
		obs := make([]int, 60)
		for t := range obs {
			obs[t] = i
			if rng.Float64() < 0.2 {
				obs[t] = rng.Intn(len(names))
			}
		}
		got, err := pool.Classify(obs)
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("sequence %d classified as %s, want %s", i, got, name)
		}
	}
}

func TestEvaluateAllSorted(t *testing.T) {
	pool := NewEnginePool(2)
	pool.Register(coin("a", 0.9, 0.9))
	pool.Register(coin("b", 0.5, 0.5))
	evals, err := pool.EvaluateAll([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 2 {
		t.Fatalf("evals = %v", evals)
	}
	if evals[0].LogLikelihood < evals[1].LogLikelihood {
		t.Fatal("evaluations not sorted")
	}
}

func TestClassifyEmptyPool(t *testing.T) {
	pool := NewEnginePool(1)
	if _, err := pool.Classify([]int{0}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestRegisterInvalid(t *testing.T) {
	pool := NewEnginePool(1)
	bad := coin("bad", 0.9, 0.9)
	bad.Pi = []float64{0.5, 0.6}
	if err := pool.Register(bad); err == nil {
		t.Fatal("invalid model registered")
	}
}

func TestQuantize(t *testing.T) {
	f1 := []float64{0.0, 0.6, 1.0}
	f2 := []float64{0.9, 0.1, 0.5}
	obs, err := Quantize([][]float64{f1, f2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3} // (0,1)=1, (1,0)=2, (1,1)=3
	for i := range want {
		if obs[i] != want[i] {
			t.Fatalf("obs = %v, want %v", obs, want)
		}
	}
	if SymbolSpace(2, 2) != 4 {
		t.Fatalf("symbol space = %d", SymbolSpace(2, 2))
	}
	// Out-of-range inputs clamp.
	obs, err = Quantize([][]float64{{-1, 2}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if obs[0] != 0 || obs[1] != 3 {
		t.Fatalf("clamped = %v", obs)
	}
}

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize([][]float64{{0.5}}, 1); err == nil {
		t.Fatal("levels=1 accepted")
	}
	if _, err := Quantize([][]float64{{0.5}, {0.5, 0.6}}, 2); err == nil {
		t.Fatal("ragged features accepted")
	}
	obs, err := Quantize(nil, 4)
	if err != nil || obs != nil {
		t.Fatalf("empty features = %v, %v", obs, err)
	}
}

func TestSaveLoadStore(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := NewModel("Smash", 4, 6)
	m.Randomize(rng)
	store := monet.NewStore()
	m.SaveToStore(store, "models/smash")
	got, err := LoadFromStore(store, "models/smash", "Smash")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.M() != 6 {
		t.Fatalf("dims = %dx%d", got.N(), got.M())
	}
	for i := range m.Pi {
		if math.Abs(got.Pi[i]-m.Pi[i]) > 1e-12 {
			t.Fatal("Pi mismatch")
		}
	}
	for i := range m.A {
		for j := range m.A[i] {
			if math.Abs(got.A[i][j]-m.A[i][j]) > 1e-12 {
				t.Fatal("A mismatch")
			}
		}
		for k := range m.B[i] {
			if math.Abs(got.B[i][k]-m.B[i][k]) > 1e-12 {
				t.Fatal("B mismatch")
			}
		}
	}
	if _, err := LoadFromStore(store, "models/nope", "x"); err == nil {
		t.Fatal("missing model accepted")
	}
}

// Property: the forward log-likelihood of any valid model is <= 0, and
// the Viterbi path probability never exceeds the total likelihood.
func TestLikelihoodBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel("p", 2+rng.Intn(3), 2+rng.Intn(4))
		m.Randomize(rng)
		obs := make([]int, 30)
		for i := range obs {
			obs[i] = rng.Intn(m.M())
		}
		ll, err := m.LogLikelihood(obs)
		if err != nil || ll > 1e-9 {
			return false
		}
		_, vp, err := m.Viterbi(obs)
		if err != nil {
			return false
		}
		return vp <= ll+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
