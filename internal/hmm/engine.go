package hmm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// HMM pool metrics: per-model evaluation latency (one observation per
// model per EvaluateAll) plus whole-pool fan-out/join latency.
// Handles are cached here because several methods shadow the package
// name with their `obs` observation parameter.
var (
	cEvaluations = obs.C("hmm.evaluations")
	cClassifies  = obs.C("hmm.classifications")
	hModelEval   = obs.H("hmm.eval.model.latency")
	hPoolEval    = obs.H("hmm.eval.pool.latency")
)

// Evaluation is one model's score over an observation sequence.
type Evaluation struct {
	Model         string
	LogLikelihood float64
}

// EnginePool evaluates a set of HMMs over observation sequences,
// optionally in parallel — the in-process rendering of the paper's six
// remote HMM servers (Fig. 3). Threads follows Monet's threadcnt
// semantics (Fig. 4 uses threadcnt(7): one coordinator plus six
// workers).
type EnginePool struct {
	models  map[string]*Model
	Threads int
}

// NewEnginePool returns a pool using the given worker count (<= 0
// selects GOMAXPROCS).
func NewEnginePool(threads int) *EnginePool {
	return &EnginePool{models: map[string]*Model{}, Threads: threads}
}

// Register adds a model to the pool, replacing a same-named one.
func (p *EnginePool) Register(m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.models[m.Name] = m
	return nil
}

// Models returns the sorted registered model names.
func (p *EnginePool) Models() []string {
	names := make([]string, 0, len(p.models))
	for n := range p.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EvaluateAll scores every registered model on the observation
// sequence as tasks on the shared kernel pool (the paper's Fig. 3:
// six HMMs evaluated in parallel) and returns evaluations sorted by
// descending likelihood. A positive Threads bounds how many models
// score concurrently; all per-model errors are joined.
func (p *EnginePool) EvaluateAll(obs []int) ([]Evaluation, error) {
	defer func(start time.Time) { hPoolEval.Observe(time.Since(start)) }(time.Now())
	names := p.Models()
	evals := make([]Evaluation, len(names))
	errs := make([]error, len(names))
	score := func(i int, name string) {
		start := time.Now()
		ll, err := p.models[name].LogLikelihood(obs)
		hModelEval.Observe(time.Since(start))
		cEvaluations.Inc()
		if err != nil {
			errs[i] = fmt.Errorf("model %s: %w", name, err)
			return
		}
		evals[i] = Evaluation{Model: name, LogLikelihood: ll}
	}
	width := p.Threads
	if width <= 0 || width > len(names) {
		width = len(names)
	}
	if width <= 1 {
		for i, name := range names {
			score(i, name)
		}
	} else {
		// Width is bounded by submitting `width` drainer tasks over a
		// pre-filled channel; drainers never block on each other, so
		// this nests safely inside other pool work.
		next := make(chan int, len(names))
		for i := range names {
			next <- i
		}
		close(next)
		batch := monet.DefaultPool().Batch()
		for w := 0; w < width; w++ {
			batch.Submit(func() {
				for i := range next {
					score(i, names[i])
				}
			})
		}
		batch.Wait()
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	sort.Slice(evals, func(a, b int) bool {
		return evals[a].LogLikelihood > evals[b].LogLikelihood
	})
	return evals, nil
}

// Classify returns the best-scoring model name for the observation
// sequence — the Fig. 4 procedure's reverse().find(max) step.
func (p *EnginePool) Classify(obs []int) (string, error) {
	cClassifies.Inc()
	evals, err := p.EvaluateAll(obs)
	if err != nil {
		return "", err
	}
	if len(evals) == 0 {
		return "", fmt.Errorf("hmm: no models registered")
	}
	return evals[0].Model, nil
}

// Quantize maps parallel feature vectors (each in [0, 1]) to a single
// discrete observation symbol per step — the quant1 step of Fig. 4.
// Each feature is binned into levels bins; the joint code is their
// mixed-radix combination.
func Quantize(features [][]float64, levels int) ([]int, error) {
	if levels < 2 {
		return nil, fmt.Errorf("hmm: need >= 2 quantization levels")
	}
	if len(features) == 0 {
		return nil, nil
	}
	T := len(features[0])
	for i, f := range features {
		if len(f) != T {
			return nil, fmt.Errorf("hmm: feature %d length %d != %d", i, len(f), T)
		}
	}
	out := make([]int, T)
	for t := 0; t < T; t++ {
		code := 0
		for _, f := range features {
			v := f[t]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			level := int(v * float64(levels))
			if level == levels {
				level = levels - 1
			}
			code = code*levels + level
		}
		out[t] = code
	}
	return out, nil
}

// SymbolSpace returns the observation alphabet size produced by
// Quantize for the given feature count and level count.
func SymbolSpace(nFeatures, levels int) int {
	s := 1
	for i := 0; i < nFeatures; i++ {
		s *= levels
	}
	return s
}
