package hmm

import (
	"fmt"
	"math"
)

// TrainConfig parameterizes Baum-Welch training.
type TrainConfig struct {
	// MaxIterations caps training iterations (default 50).
	MaxIterations int
	// Tolerance is the minimum log-likelihood improvement to continue
	// (default 1e-4).
	Tolerance float64
	// Prior is a pseudo-count keeping rows away from zero (default 0.01).
	Prior float64
}

// DefaultTrainConfig returns the standard settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{MaxIterations: 50, Tolerance: 1e-4, Prior: 0.01}
}

// TrainResult reports a Baum-Welch run.
type TrainResult struct {
	Iterations    int
	LogLikelihood float64
	Converged     bool
}

// Train fits the model to the observation sequences by multi-sequence
// Baum-Welch, the HMM extension's training operation (§3).
func (m *Model) Train(seqs [][]int, cfg TrainConfig) (TrainResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-4
	}
	for _, obs := range seqs {
		if err := m.checkObs(obs); err != nil {
			return TrainResult{}, err
		}
	}
	n, sym := m.N(), m.M()
	res := TrainResult{LogLikelihood: math.Inf(-1)}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piC := fill(make([]float64, n), cfg.Prior)
		aC := make([][]float64, n)
		bC := make([][]float64, n)
		for i := 0; i < n; i++ {
			aC[i] = fill(make([]float64, n), cfg.Prior)
			bC[i] = fill(make([]float64, sym), cfg.Prior)
		}
		ll := 0.0
		for _, obs := range seqs {
			if len(obs) == 0 {
				continue
			}
			sll, err := m.expect(obs, piC, aC, bC)
			if err != nil {
				return res, err
			}
			ll += sll
		}
		normalizeInto(m.Pi, piC)
		for i := 0; i < n; i++ {
			normalizeInto(m.A[i], aC[i])
			normalizeInto(m.B[i], bC[i])
		}
		res.Iterations = iter + 1
		if ll-res.LogLikelihood < cfg.Tolerance && iter > 0 {
			res.LogLikelihood = ll
			res.Converged = true
			return res, nil
		}
		res.LogLikelihood = ll
	}
	return res, nil
}

func fill(p []float64, v float64) []float64 {
	for i := range p {
		p[i] = v
	}
	return p
}

func normalizeInto(dst, counts []float64) {
	s := 0.0
	for _, v := range counts {
		s += v
	}
	if s <= 0 {
		return
	}
	for i := range dst {
		dst[i] = counts[i] / s
	}
}

// expect runs scaled forward-backward on one sequence and accumulates
// expected counts, returning the sequence log-likelihood.
func (m *Model) expect(obs []int, piC []float64, aC, bC [][]float64) (float64, error) {
	n := m.N()
	T := len(obs)
	alpha := make([][]float64, T)
	scale := make([]float64, T)
	alpha[0] = make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
	}
	scale[0] = scaleRow(alpha[0])
	if scale[0] <= 0 {
		return 0, fmt.Errorf("hmm: impossible observation at t=0")
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = s * m.B[j][obs[t]]
		}
		scale[t] = scaleRow(alpha[t])
		if scale[t] <= 0 {
			return 0, fmt.Errorf("hmm: impossible observation at t=%d", t)
		}
	}
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, n)
	for i := range beta[T-1] {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t+1]
		}
	}
	gamma := make([]float64, n)
	for t := 0; t < T; t++ {
		z := 0.0
		for i := 0; i < n; i++ {
			gamma[i] = alpha[t][i] * beta[t][i]
			z += gamma[i]
		}
		if z <= 0 {
			continue
		}
		for i := 0; i < n; i++ {
			g := gamma[i] / z
			if t == 0 {
				piC[i] += g
			}
			bC[i][obs[t]] += g
		}
	}
	for t := 0; t < T-1; t++ {
		z := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				z += alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
		}
		if z <= 0 {
			continue
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				aC[i][j] += alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j] / z
			}
		}
	}
	ll := 0.0
	for _, s := range scale {
		ll += math.Log(s)
	}
	return ll, nil
}
