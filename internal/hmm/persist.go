package hmm

import (
	"fmt"

	"cobra/internal/monet"
)

// SaveToStore stores the model's parameters as kernel BATs under
// prefix (dimensions, Pi, A, B) — the aMatrix/bMatrix files of the
// paper's Fig. 4, kept inside the database instead of on disk.
func (m *Model) SaveToStore(store *monet.Store, prefix string) {
	dims := monet.NewBAT(monet.Void, monet.IntT)
	dims.MustInsert(monet.VoidValue(), monet.NewInt(int64(m.N())))
	dims.MustInsert(monet.VoidValue(), monet.NewInt(int64(m.M())))
	store.Put(prefix+"/dims", dims)
	store.Put(prefix+"/pi", floatBAT(m.Pi))
	store.Put(prefix+"/a", floatBAT(flatten(m.A)))
	store.Put(prefix+"/b", floatBAT(flatten(m.B)))
}

// LoadFromStore restores a model saved under prefix.
func LoadFromStore(store *monet.Store, prefix, name string) (*Model, error) {
	dims, err := store.Get(prefix + "/dims")
	if err != nil || dims.Len() != 2 {
		return nil, fmt.Errorf("hmm: no model saved under %q", prefix)
	}
	n := int(dims.Tail(0).Int())
	symbols := int(dims.Tail(1).Int())
	if n < 1 || symbols < 1 {
		return nil, fmt.Errorf("hmm: corrupt dimensions %dx%d under %q", n, symbols, prefix)
	}
	m := NewModel(name, n, symbols)
	pi, err := readFloats(store, prefix+"/pi", n)
	if err != nil {
		return nil, err
	}
	copy(m.Pi, pi)
	a, err := readFloats(store, prefix+"/a", n*n)
	if err != nil {
		return nil, err
	}
	bvals, err := readFloats(store, prefix+"/b", n*symbols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		copy(m.A[i], a[i*n:(i+1)*n])
		copy(m.B[i], bvals[i*symbols:(i+1)*symbols])
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("hmm: model under %q invalid after load: %w", prefix, err)
	}
	return m, nil
}

func flatten(rows [][]float64) []float64 {
	var out []float64
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

func floatBAT(vals []float64) *monet.BAT {
	b := monet.NewBATCap(monet.Void, monet.FloatT, len(vals))
	for _, v := range vals {
		b.MustInsert(monet.VoidValue(), monet.NewFloat(v))
	}
	return b
}

func readFloats(store *monet.Store, name string, want int) ([]float64, error) {
	b, err := store.Get(name)
	if err != nil {
		return nil, fmt.Errorf("hmm: missing BAT %q", name)
	}
	if b.Len() != want {
		return nil, fmt.Errorf("hmm: BAT %q has %d entries, want %d", name, b.Len(), want)
	}
	out := make([]float64, want)
	for i := 0; i < want; i++ {
		out[i] = b.Tail(i).Float()
	}
	return out, nil
}
