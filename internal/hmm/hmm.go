// Package hmm implements discrete hidden Markov models: scaled
// forward/backward evaluation, Viterbi decoding, and Baum-Welch
// training — the HMM extension of the Cobra VDBMS (§3). Evaluate-style
// operations are exposed both directly and through an engine pool that
// evaluates several models in parallel, mirroring the paper's
// distributed HMM servers (Figs. 3 and 4).
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Model is a discrete HMM with N states and M observation symbols.
type Model struct {
	// Name labels the model (e.g. a tennis stroke class).
	Name string
	// Pi is the initial state distribution (length N).
	Pi []float64
	// A is the state transition matrix (N rows of length N).
	A [][]float64
	// B is the emission matrix (N rows of length M).
	B [][]float64
}

// ErrBadModel reports malformed parameters.
var ErrBadModel = errors.New("hmm: bad model")

// NewModel allocates a uniform model.
func NewModel(name string, states, symbols int) *Model {
	m := &Model{Name: name}
	m.Pi = make([]float64, states)
	for i := range m.Pi {
		m.Pi[i] = 1 / float64(states)
	}
	m.A = make([][]float64, states)
	m.B = make([][]float64, states)
	for i := range m.A {
		m.A[i] = make([]float64, states)
		m.B[i] = make([]float64, symbols)
		for j := range m.A[i] {
			m.A[i][j] = 1 / float64(states)
		}
		for k := range m.B[i] {
			m.B[i][k] = 1 / float64(symbols)
		}
	}
	return m
}

// N returns the state count.
func (m *Model) N() int { return len(m.Pi) }

// M returns the symbol count.
func (m *Model) M() int {
	if len(m.B) == 0 {
		return 0
	}
	return len(m.B[0])
}

// Validate checks shapes and row normalization.
func (m *Model) Validate() error {
	n := m.N()
	if n == 0 {
		return fmt.Errorf("%w: no states", ErrBadModel)
	}
	if len(m.A) != n || len(m.B) != n {
		return fmt.Errorf("%w: shape mismatch", ErrBadModel)
	}
	if !isDistribution(m.Pi) {
		return fmt.Errorf("%w: Pi not a distribution", ErrBadModel)
	}
	for i := 0; i < n; i++ {
		if len(m.A[i]) != n {
			return fmt.Errorf("%w: A row %d length", ErrBadModel, i)
		}
		if !isDistribution(m.A[i]) {
			return fmt.Errorf("%w: A row %d not a distribution", ErrBadModel, i)
		}
		if len(m.B[i]) != m.M() {
			return fmt.Errorf("%w: B row %d length", ErrBadModel, i)
		}
		if !isDistribution(m.B[i]) {
			return fmt.Errorf("%w: B row %d not a distribution", ErrBadModel, i)
		}
	}
	return nil
}

func isDistribution(p []float64) bool {
	s := 0.0
	for _, v := range p {
		if v < 0 {
			return false
		}
		s += v
	}
	return math.Abs(s-1) < 1e-6
}

// Randomize sets random parameters.
func (m *Model) Randomize(rng *rand.Rand) {
	randomizeRow(m.Pi, rng)
	for i := range m.A {
		randomizeRow(m.A[i], rng)
		randomizeRow(m.B[i], rng)
	}
}

func randomizeRow(p []float64, rng *rand.Rand) {
	s := 0.0
	for i := range p {
		v := 0.1 + rng.Float64()
		p[i] = v
		s += v
	}
	for i := range p {
		p[i] /= s
	}
}

// checkObs validates an observation sequence against the model.
func (m *Model) checkObs(obs []int) error {
	for t, o := range obs {
		if o < 0 || o >= m.M() {
			return fmt.Errorf("%w: observation %d at t=%d out of range", ErrBadModel, o, t)
		}
	}
	return nil
}

// LogLikelihood evaluates log P(obs | model) with the scaled forward
// algorithm, the paper's costly inference operation that is
// distributed across HMM engines.
func (m *Model) LogLikelihood(obs []int) (float64, error) {
	if err := m.checkObs(obs); err != nil {
		return 0, err
	}
	if len(obs) == 0 {
		return 0, nil
	}
	n := m.N()
	alpha := make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[i] = m.Pi[i] * m.B[i][obs[0]]
	}
	ll := 0.0
	z := scaleRow(alpha)
	if z <= 0 {
		return math.Inf(-1), nil
	}
	ll += math.Log(z)
	next := make([]float64, n)
	for t := 1; t < len(obs); t++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += alpha[i] * m.A[i][j]
			}
			next[j] = s * m.B[j][obs[t]]
		}
		alpha, next = next, alpha
		z = scaleRow(alpha)
		if z <= 0 {
			return math.Inf(-1), nil
		}
		ll += math.Log(z)
	}
	return ll, nil
}

func scaleRow(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range p {
			p[i] *= inv
		}
	}
	return s
}

// Viterbi returns the most probable state path and its log
// probability.
func (m *Model) Viterbi(obs []int) ([]int, float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, 0, err
	}
	if len(obs) == 0 {
		return nil, 0, nil
	}
	n := m.N()
	T := len(obs)
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, n)
	psi[0] = make([]int, n)
	for i := 0; i < n; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + safeLog(m.B[i][obs[0]])
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, n)
		psi[t] = make([]int, n)
		for j := 0; j < n; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < n; i++ {
				v := delta[t-1][i] + safeLog(m.A[i][j])
				if v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + safeLog(m.B[j][obs[t]])
			psi[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	path := make([]int, T)
	path[T-1] = arg
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best, nil
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}
