package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe latency histogram. Observations
// (nanoseconds) land in log-linear buckets — four sub-buckets per
// power of two, giving a worst-case relative quantile error of ~12.5%
// before interpolation — and the bucket array is striped so concurrent
// writers on different cores do not share cache lines. All writes are
// lock-free atomic adds.
type Histogram struct {
	name    string
	stripes [histStripes]histStripe
}

const (
	histStripes = 8 // power of two
	// 4 direct buckets for 0..3 ns plus 4 sub-buckets for each of the
	// 62 remaining octaves of int64.
	histBuckets = 4 + 62*4
)

type histStripe struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	_      [40]byte // pad the hot tail fields away from the next stripe
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[stripeOf(ns)]
	s.counts[bucketIndex(ns)].Add(1)
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		m := s.max.Load()
		if ns <= m || s.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// stripeOf spreads observations over stripes by hashing the value, so
// unrelated writers rarely contend on the same cache lines.
func stripeOf(ns int64) uint64 {
	return (uint64(ns) * 0x9E3779B97F4A7C15) >> (64 - 3)
}

// bucketIndex maps nanoseconds to a log-linear bucket.
func bucketIndex(ns int64) int {
	v := uint64(ns)
	if v < 4 {
		return int(v)
	}
	b := uint(bits.Len64(v) - 1) // >= 2
	sub := (v >> (b - 2)) & 3
	return int(b-2)*4 + 4 + int(sub)
}

// bucketBounds returns the inclusive lower bound and width of a bucket.
func bucketBounds(idx int) (lower, width float64) {
	if idx < 4 {
		return float64(idx), 1
	}
	b := uint((idx-4)/4 + 2)
	sub := uint64((idx - 4) % 4)
	lo := uint64(1)<<b + sub<<(b-2)
	return float64(lo), float64(uint64(1) << (b - 2))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// SumNs returns the sum of all observations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	var s int64
	for i := range h.stripes {
		s += h.stripes[i].sum.Load()
	}
	return s
}

// MaxNs returns the largest observation in nanoseconds.
func (h *Histogram) MaxNs() int64 {
	var m int64
	for i := range h.stripes {
		if v := h.stripes[i].max.Load(); v > m {
			m = v
		}
	}
	return m
}

// merged collapses the stripes into one bucket array.
func (h *Histogram) merged() (buckets [histBuckets]uint64, total uint64) {
	for i := range h.stripes {
		for b := range h.stripes[i].counts {
			c := h.stripes[i].counts[b].Load()
			buckets[b] += c
			total += c
		}
	}
	return buckets, total
}

// Quantile estimates the q-th quantile (q in [0, 1]) in nanoseconds,
// interpolating linearly within the target bucket. It returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	buckets, total := h.merged()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower, width := bucketBounds(i)
			frac := (target - cum) / float64(c)
			return lower + frac*width
		}
		cum = next
	}
	return float64(h.MaxNs())
}

// HistStat is a histogram summary for snapshots and JSON export.
type HistStat struct {
	Count  uint64  `json:"count"`
	SumNs  int64   `json:"sum_ns"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Stat summarizes the histogram.
func (h *Histogram) Stat() HistStat {
	st := HistStat{
		Count: h.Count(),
		SumNs: h.SumNs(),
		MaxNs: h.MaxNs(),
	}
	if st.Count > 0 {
		st.MeanNs = float64(st.SumNs) / float64(st.Count)
		st.P50Ns = h.Quantile(0.50)
		st.P95Ns = h.Quantile(0.95)
		st.P99Ns = h.Quantile(0.99)
	}
	return st
}
