package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one timed node of a hierarchical query trace. Every method
// is safe on a nil receiver, so instrumented code can thread an
// optional parent span without nil checks: untraced calls pass nil and
// the span machinery vanishes.
type Span struct {
	name  string
	start time.Time
	id    uint64
	trace string     // trace ID, "" for spans outside a trace
	res   *Resources // shared per-trace accumulator, may be nil

	mu       sync.Mutex
	dur      time.Duration // 0 while the span is open
	attrs    []Attr
	children []*Span
}

// StartSpan starts a root span outside any trace (no trace ID, no
// resource accumulator). Use StartTrace for protocol requests.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), id: spanSeq.Add(1)}
}

// StartTrace starts the root span of a new trace: it is assigned a
// process-unique trace ID and a fresh Resources accumulator, both
// inherited by every child span in the tree.
func StartTrace(name string) *Span {
	s := StartSpan(name)
	s.trace = fmt.Sprintf("t%06x", traceSeq.Add(1))
	s.res = &Resources{}
	return s
}

// StartChild starts and attaches a child span, inheriting the parent's
// trace ID and resource accumulator. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	c.trace = s.trace
	c.res = s.res
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ID returns the process-unique span ID (0 for nil). Nil-safe.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace this span belongs to, or "" when the span
// is outside a trace. Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Resources returns the trace's shared resource accumulator, or nil
// when the span is outside a trace. Nil-safe.
func (s *Span) Resources() *Resources {
	if s == nil {
		return nil
	}
	return s.res
}

// StartTime returns when the span started. Nil-safe.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// Finish closes the span (idempotent) and returns its duration, which
// is clamped to at least 1 ns so finished spans always report a
// non-zero timing. Nil-safe.
func (s *Span) Finish() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
		if s.dur <= 0 {
			s.dur = time.Nanosecond
		}
	}
	return s.dur
}

// Name returns the span name. Nil-safe.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration (elapsed time if still open).
// Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == 0 {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a copy of the child spans. Nil-safe.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attr returns the first value recorded for key ("" when absent).
// Nil-safe.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Attrs returns a copy of all annotations in recording order.
// Nil-safe.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Render formats the span tree as indented text, one span per line:
//
//	coql.query 1.82ms level=conceptual query="SELECT ..."
//	  moa.eval 1.71ms level=logical
//	    monet.scan 1.60ms level=physical rows=42
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	d := s.dur
	if d == 0 {
		d = time.Since(s.start)
	}
	name := s.name
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(FormatDuration(d))
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		if strings.ContainsAny(a.Val, " \t\"") {
			fmt.Fprintf(b, "%q", a.Val)
		} else {
			b.WriteString(a.Val)
		}
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.render(b, depth+1)
	}
}

// FormatDuration renders a duration compactly for trace output.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
