// Package obs is the dependency-free telemetry substrate of the Cobra
// VDBMS: atomic counters and gauges, striped latency histograms with
// quantile estimation, hierarchical trace spans, and a slow-query log.
// Every level of the stack (COQL engine, preprocessor, Moa algebra,
// MIL interpreter, Monet kernel, HMM/DBN engines, and the wal
// durability subsystem with its record/byte counters, fsync latency
// histogram and recovery gauges) records into the package-level
// Default registry; the server exposes it over the TCP protocol
// (STATS, TRACE, SLOWLOG) and over HTTP (/metrics plus
// net/http/pprof). The kernel's morsel scheduler reports under
// monet.pool.*: task/inline/morsel counters, queue-depth and worker
// gauges, and per-operator-family latency plus parallel-speedup
// histograms (speedup in milli-×, 2000 = 2×).
//
// The package deliberately imports only the standard library so any
// layer — including the Monet kernel at the bottom of the dependency
// graph — can record metrics without cycles.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (e.g. current fan-out width).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metrics. Metric handles are get-or-create and
// stable: callers cache the returned pointers on hot paths.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry all built-in instrumentation
// records into.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{name: name}
	r.hists[name] = h
	return h
}

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Timer starts a timer recording into the Default registry's named
// histogram on invocation of the returned func:
//
//	defer obs.Timer("moa.select_range")()
func Timer(name string) func() {
	h := H(name)
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies every metric's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistStat, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Stat()
	}
	return s
}

// WriteText renders the registry as sorted, line-oriented plain text
// (the STATS protocol format): "counter <name> <value>",
// "gauge <name> <value>", and "hist <name> count=... p50_ns=...".
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf(
			"hist %s count=%d mean_ns=%.0f p50_ns=%.0f p95_ns=%.0f p99_ns=%.0f max_ns=%d",
			n, h.Count, h.MeanNs, h.P50Ns, h.P95Ns, h.P99Ns, h.MaxNs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
