package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one logged slow query. When the query ran under a
// trace, TraceID and the full span tree (Root) are retained so the
// offending query can be dissected after the fact; memory stays
// bounded because span trees cap their morsel detail and the log is a
// fixed-size ring.
type SlowEntry struct {
	When     time.Time
	Duration time.Duration
	Query    string
	TraceID  string
	Root     *Span
}

// SlowLog keeps the most recent queries that exceeded a configurable
// latency threshold in a fixed-size ring. A zero threshold disables
// logging, so the default-constructed log costs one atomic load per
// query.
type SlowLog struct {
	threshold atomic.Int64 // ns; <= 0 disables

	mu      sync.Mutex
	entries []SlowEntry // ring once len == cap
	next    int
	cap     int
}

// NewSlowLog returns a slow-query log retaining up to capacity entries.
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{cap: capacity}
}

// DefaultSlowLog is the process-wide slow-query log the COQL engine
// records into.
var DefaultSlowLog = NewSlowLog(128)

// SetThreshold sets the latency above which queries are logged
// (0 disables).
func (l *SlowLog) SetThreshold(d time.Duration) { l.threshold.Store(int64(d)) }

// Threshold returns the current threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// Record logs the query if its duration reaches the threshold,
// reporting whether it was logged.
func (l *SlowLog) Record(query string, d time.Duration) bool {
	return l.RecordTrace(query, d, nil)
}

// RecordTrace logs the query with its trace's root span (may be nil)
// if its duration reaches the threshold, reporting whether it was
// logged.
func (l *SlowLog) RecordTrace(query string, d time.Duration, root *Span) bool {
	th := l.threshold.Load()
	if th <= 0 || int64(d) < th {
		return false
	}
	e := SlowEntry{When: time.Now(), Duration: d, Query: query, TraceID: root.TraceID(), Root: root}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return true
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
	return true
}

// Entries returns the retained entries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	if len(l.entries) == l.cap {
		out = append(out, l.entries[l.next:]...)
		out = append(out, l.entries[:l.next]...)
		return out
	}
	return append(out, l.entries...)
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
