package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDsUniqueConcurrent(t *testing.T) {
	const goroutines, perG = 16, 200
	ids := make(chan string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := StartTrace("q")
				ids <- sp.TraceID()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if id == "" {
			t.Fatal("empty trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicated trace ID %s", id)
		}
		seen[id] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("lost trace IDs: %d of %d", len(seen), goroutines*perG)
	}
}

func TestTraceRingBoundedAndOrdered(t *testing.T) {
	ring := NewTraceRing(8)
	for i := 0; i < 100; i++ {
		ring.Add(Trace{ID: fmt.Sprintf("t%06x", i), Query: "q"})
	}
	if ring.Len() != 8 {
		t.Fatalf("ring retains %d traces, want 8", ring.Len())
	}
	recent := ring.Recent()
	if len(recent) != 8 {
		t.Fatalf("Recent() = %d entries", len(recent))
	}
	// Newest first: IDs 99 down to 92.
	for i, tr := range recent {
		want := fmt.Sprintf("t%06x", 99-i)
		if tr.ID != want {
			t.Fatalf("Recent()[%d].ID = %s, want %s", i, tr.ID, want)
		}
	}
	if _, ok := ring.Get("t00005f"); !ok { // 95: retained
		t.Fatal("recent trace evicted")
	}
	if _, ok := ring.Get("t000000"); ok { // 0: evicted
		t.Fatal("oldest trace still retained")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ring.Add(Trace{ID: fmt.Sprintf("g%d-%d", g, i)})
				ring.Recent()
				ring.Get("g0-0")
			}
		}(g)
	}
	wg.Wait()
	if ring.Len() != 16 {
		t.Fatalf("ring over capacity: %d", ring.Len())
	}
}

func TestContextSpanCarriage(t *testing.T) {
	if sp := SpanFromContext(context.Background()); sp != nil {
		t.Fatal("span in empty context")
	}
	if sp := SpanFromContext(nil); sp != nil { //nolint:staticcheck // nil ctx is the untraced path
		t.Fatal("span in nil context")
	}
	root := StartTrace("q")
	ctx := ContextWithSpan(context.Background(), root)
	got := SpanFromContext(ctx)
	if got != root {
		t.Fatal("context did not carry the span")
	}
	// A nil span leaves the context unchanged.
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil span rewrapped the context")
	}
	child := got.StartChild("child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root %q", child.TraceID(), root.TraceID())
	}
	if child.Resources() != root.Resources() {
		t.Fatal("child does not share the root's resource accumulator")
	}
}

func TestResourcesAccumulateAndNilSafe(t *testing.T) {
	var nilRes *Resources
	nilRes.AddScanned(5)
	nilRes.AddMorsel(time.Millisecond, time.Millisecond)
	nilRes.AddWALWait(time.Millisecond)
	if st := nilRes.Stat(); st != (ResourceStat{}) {
		t.Fatalf("nil Resources stat = %+v", st)
	}

	root := StartTrace("q")
	res := root.Resources()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				res.AddScanned(10)
				res.AddMorsel(time.Microsecond, 2*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	st := res.Stat()
	if st.RowsScanned != 8000 || st.Morsels != 800 {
		t.Fatalf("stat = %+v", st)
	}
	if st.QueueWait != 800*time.Microsecond || st.KernelBusy != 1600*time.Microsecond {
		t.Fatalf("timings = %+v", st)
	}
	s := st.String()
	for _, key := range []string{"rows_scanned=8000", "morsels=800", "queue_wait=", "kernel_busy=", "wal_wait=", "alloc_bytes="} {
		if !strings.Contains(s, key) {
			t.Fatalf("stat string %q missing %s", s, key)
		}
	}
}

func TestDeterministicChildOrder(t *testing.T) {
	// Children attach in StartChild call order even when finished
	// concurrently — the ordering contract morsel spans rely on.
	root := StartTrace("q")
	const n = 50
	spans := make([]*Span, n)
	for i := 0; i < n; i++ {
		spans[i] = root.StartChild(fmt.Sprintf("m%02d", i))
	}
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(sp *Span) {
			defer wg.Done()
			sp.Finish()
		}(spans[i])
	}
	wg.Wait()
	root.Finish()
	kids := root.Children()
	if len(kids) != n {
		t.Fatalf("children = %d, want %d", len(kids), n)
	}
	for i, c := range kids {
		if want := fmt.Sprintf("m%02d", i); c.Name() != want {
			t.Fatalf("child %d = %s, want %s", i, c.Name(), want)
		}
	}
}

func TestSlowLogRetainsTrace(t *testing.T) {
	log := NewSlowLog(4)
	log.SetThreshold(time.Millisecond)
	root := StartTrace("q")
	child := root.StartChild("monet.select")
	child.Finish()
	root.Finish()
	if !log.RecordTrace("SELECT ...", 5*time.Millisecond, root) {
		t.Fatal("slow query not recorded")
	}
	es := log.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0].TraceID != root.TraceID() || es[0].Root != root {
		t.Fatalf("entry lost its trace: %+v", es[0])
	}
	// Ring stays bounded under concurrent traced records.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := StartTrace("q")
				r.Finish()
				log.RecordTrace("q", 2*time.Millisecond, r)
				log.Entries()
			}
		}()
	}
	wg.Wait()
	if log.Len() != 4 {
		t.Fatalf("slow log over capacity: %d", log.Len())
	}
}

// TestChromeTraceSchema validates the exported JSON against the
// trace-event schema: an object with a traceEvents array of complete
// events, each carrying name/cat/ph/ts/dur/pid/tid with ph == "X",
// non-negative microsecond timestamps, and the span/trace identity in
// args.
func TestChromeTraceSchema(t *testing.T) {
	root := StartTrace("coql.query")
	root.SetAttr("level", "conceptual")
	child := root.StartChild("mil.exec")
	grand := child.StartChild("monet.morsel")
	grand.SetAttr("morsel", "0")
	time.Sleep(time.Millisecond)
	grand.Finish()
	child.Finish()
	root.Finish()

	data, err := ChromeTraceJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		DisplayUnit string                       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	var prevTs float64 = -1
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %s", i, field, data)
			}
		}
		var ph, name string
		var ts, dur float64
		var pid, tid int
		mustUnmarshal(t, ev["ph"], &ph)
		mustUnmarshal(t, ev["name"], &name)
		mustUnmarshal(t, ev["ts"], &ts)
		mustUnmarshal(t, ev["dur"], &dur)
		mustUnmarshal(t, ev["pid"], &pid)
		mustUnmarshal(t, ev["tid"], &tid)
		if ph != "X" {
			t.Fatalf("event %d ph = %q, want X", i, ph)
		}
		if ts < 0 || dur <= 0 {
			t.Fatalf("event %d ts=%v dur=%v", i, ts, dur)
		}
		if pid != 1 || tid != 1 {
			t.Fatalf("event %d pid=%d tid=%d", i, pid, tid)
		}
		// Depth-first export: parents precede children, so ts ascends.
		if ts < prevTs {
			t.Fatalf("event %d ts %v before predecessor %v", i, ts, prevTs)
		}
		prevTs = ts
		var args map[string]string
		mustUnmarshal(t, ev["args"], &args)
		if args["trace_id"] != root.TraceID() {
			t.Fatalf("event %d trace_id = %q, want %q", i, args["trace_id"], root.TraceID())
		}
		if args["span_id"] == "" || args["span_id"] == "0" {
			t.Fatalf("event %d span_id = %q", i, args["span_id"])
		}
	}
	if ChromeTrace(nil) != nil {
		t.Fatal("nil root exported events")
	}
	empty, err := ChromeTraceJSON(nil)
	if err != nil || !strings.Contains(string(empty), `"traceEvents":[]`) {
		t.Fatalf("nil root JSON = %s, %v", empty, err)
	}
}

func mustUnmarshal(t *testing.T, raw json.RawMessage, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("coql.queries").Add(7)
	r.Gauge("pool.workers").Set(4)
	h := r.Histogram("coql.query.latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cobra_coql_queries counter\ncobra_coql_queries 7\n",
		"# TYPE cobra_pool_workers gauge\ncobra_pool_workers 4\n",
		"# TYPE cobra_coql_query_latency_count gauge\ncobra_coql_query_latency_count 100\n",
		"cobra_coql_query_latency_p50_ns ",
		"cobra_coql_query_latency_p95_ns ",
		"cobra_coql_query_latency_p99_ns ",
		"cobra_coql_query_latency_max_ns ",
		"cobra_go_goroutines ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Inc()
	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()

	res := httpGet(t, srv.URL, "")
	if ct := res.ct; ct != PromContentType {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if !strings.Contains(res.body, "# TYPE cobra_server_requests counter") {
		t.Fatalf("default body not Prometheus text:\n%s", res.body)
	}

	res = httpGet(t, srv.URL, "application/json")
	if !strings.Contains(res.ct, "application/json") {
		t.Fatalf("negotiated Content-Type = %q", res.ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(res.body), &snap); err != nil {
		t.Fatalf("negotiated body not JSON: %v", err)
	}
	if snap.Counters["server.requests"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// getResult is one HTTP GET's Content-Type and body.
type getResult struct {
	ct   string
	body string
}

func httpGet(t *testing.T, url, accept string) getResult {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return getResult{ct: res.Header.Get("Content-Type"), body: string(body)}
}
