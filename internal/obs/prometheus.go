package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// PromContentType is the Content-Type for the Prometheus text
// exposition format served on /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name ("coql.query.latency")
// into a Prometheus metric name ("cobra_coql_query_latency").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("cobra_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format. Counters and gauges map directly; histograms are
// flattened to gauges (_count, _sum_ns, _mean_ns, _p50_ns, _p95_ns,
// _p99_ns, _max_ns) because the log-linear buckets do not line up with
// Prometheus' cumulative le-bucket convention. A small runtime section
// (goroutines, heap) is appended under cobra_go_*.
func WritePrometheus(w io.Writer, r *Registry) error {
	s := r.Snapshot()

	var blocks []string
	for name, v := range s.Counters {
		n := promName(name)
		blocks = append(blocks, fmt.Sprintf("# TYPE %s counter\n%s %d\n", n, n, v))
	}
	for name, v := range s.Gauges {
		n := promName(name)
		blocks = append(blocks, fmt.Sprintf("# TYPE %s gauge\n%s %d\n", n, n, v))
	}
	for name, h := range s.Histograms {
		n := promName(name)
		var b strings.Builder
		writePromGauge(&b, n+"_count", float64(h.Count))
		writePromGauge(&b, n+"_sum_ns", float64(h.SumNs))
		writePromGauge(&b, n+"_mean_ns", h.MeanNs)
		writePromGauge(&b, n+"_p50_ns", h.P50Ns)
		writePromGauge(&b, n+"_p95_ns", h.P95Ns)
		writePromGauge(&b, n+"_p99_ns", h.P99Ns)
		writePromGauge(&b, n+"_max_ns", float64(h.MaxNs))
		blocks = append(blocks, b.String())
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var rb strings.Builder
	writePromGauge(&rb, "cobra_go_goroutines", float64(runtime.NumGoroutine()))
	writePromGauge(&rb, "cobra_go_heap_alloc_bytes", float64(ms.HeapAlloc))
	writePromGauge(&rb, "cobra_go_gc_cycles", float64(ms.NumGC))
	blocks = append(blocks, rb.String())

	sort.Strings(blocks)
	for _, bl := range blocks {
		if _, err := io.WriteString(w, bl); err != nil {
			return err
		}
	}
	return nil
}

// writePromGauge emits one gauge sample with its TYPE line.
func writePromGauge(b *strings.Builder, name string, v float64) {
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	if v == float64(int64(v)) {
		fmt.Fprintf(b, "%s %d\n", name, int64(v))
	} else {
		fmt.Fprintf(b, "%s %g\n", name, v)
	}
}
