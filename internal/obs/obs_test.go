package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, incs = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			for i := 0; i < incs; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Histogram("x") == nil || r.Gauge("x") == nil {
		t.Fatal("name collision across metric kinds should be allowed")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const workers, obsPer = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < obsPer; i++ {
				h.ObserveNs(int64(w*obsPer + i + 1))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*obsPer {
		t.Fatalf("count = %d, want %d", got, workers*obsPer)
	}
	const n = workers * obsPer
	if got, want := h.SumNs(), int64(n)*(n+1)/2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if got := h.MaxNs(); got != n {
		t.Fatalf("max = %d, want %d", got, n)
	}
}

func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const n = 100000
	for i := int64(1); i <= n; i++ {
		h.ObserveNs(i)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, n / 2},
		{0.95, n * 0.95},
		{0.99, n * 0.99},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.10 {
			t.Errorf("q%.2f = %.0f, want %.0f (±10%%)", tc.q, got, tc.want)
		}
	}
}

func TestQuantilePointMass(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 1000; i++ {
		h.ObserveNs(4096)
	}
	got := h.Quantile(0.5)
	if rel := math.Abs(got-4096) / 4096; rel > 0.30 {
		t.Fatalf("p50 of constant 4096 = %.0f", got)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestQuantileEmptyAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.ObserveNs(-5) // clamps to 0
	if h.Count() != 1 || h.MaxNs() != 0 {
		t.Fatalf("negative observation mishandled: count=%d max=%d", h.Count(), h.MaxNs())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 4095, 4096, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		lower, width := bucketBounds(idx)
		if fv := float64(v); fv < lower || fv >= lower+width {
			// MaxInt64 sits exactly on the last bucket's upper edge after
			// float rounding; tolerate the boundary.
			if v != math.MaxInt64 {
				t.Errorf("value %d outside bucket %d [%g, %g)", v, idx, lower, lower+width)
			}
		}
	}
}

func TestSpanNesting(t *testing.T) {
	root := StartSpan("root")
	root.SetAttr("level", "conceptual")
	a := root.StartChild("a")
	aa := a.StartChild("aa")
	time.Sleep(time.Millisecond)
	aa.Finish()
	a.Finish()
	b := root.StartChild("b")
	b.SetAttr("rows", "42")
	b.Finish()
	root.Finish()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "a" || kids[1].Name() != "b" {
		t.Fatalf("children = %v", kids)
	}
	if len(a.Children()) != 1 || a.Children()[0].Name() != "aa" {
		t.Fatalf("grandchildren = %v", a.Children())
	}
	if aa.Duration() < time.Millisecond {
		t.Fatalf("aa duration = %v", aa.Duration())
	}
	if root.Duration() < a.Duration() {
		t.Fatalf("root %v shorter than child %v", root.Duration(), a.Duration())
	}
	out := root.Render()
	for _, want := range []string{"root ", "\n  a ", "\n    aa ", "\n  b ", "rows=42", "level=conceptual"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	s := StartSpan("s")
	d1 := s.Finish()
	time.Sleep(time.Millisecond)
	if d2 := s.Finish(); d2 != d1 {
		t.Fatalf("second Finish changed duration: %v != %v", d2, d1)
	}
	if d1 <= 0 {
		t.Fatalf("finished span has non-positive duration %v", d1)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetAttr("k", "v")
	if s.Finish() != 0 || s.Duration() != 0 || s.Name() != "" || s.Attr("k") != "" {
		t.Fatal("nil span not inert")
	}
	if s.Render() != "" || s.Children() != nil {
		t.Fatal("nil span rendered content")
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3)
	if l.Record("q", time.Second) {
		t.Fatal("disabled slow log recorded an entry")
	}
	l.SetThreshold(10 * time.Millisecond)
	if l.Record("fast", 5*time.Millisecond) {
		t.Fatal("fast query logged")
	}
	for i, q := range []string{"a", "b", "c", "d"} {
		if !l.Record(q, time.Duration(20+i)*time.Millisecond) {
			t.Fatalf("slow query %q not logged", q)
		}
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].Query != "b" || es[2].Query != "d" {
		t.Fatalf("ring order = %v", es)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(3)
	r.Gauge("width").Set(7)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counter queries 3", "gauge width 7", "hist lat count=1", "p95_ns="} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap.Counters["queries"] != 3 || snap.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	r.Histogram("lat").Observe(time.Millisecond)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Counters   map[string]int64    `json:"counters"`
		Histograms map[string]HistStat `json:"histograms"`
		Runtime    map[string]int64    `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Counters["hits"] != 1 {
		t.Fatalf("counters = %v", body.Counters)
	}
	if body.Histograms["lat"].Count != 1 {
		t.Fatalf("histograms = %v", body.Histograms)
	}
	if body.Runtime["goroutines"] < 1 {
		t.Fatalf("runtime = %v", body.Runtime)
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp2.StatusCode)
	}
}

func TestTimer(t *testing.T) {
	done := Timer("obs.test.timer")
	time.Sleep(time.Millisecond)
	done()
	h := H("obs.test.timer")
	if h.Count() < 1 || h.MaxNs() < int64(time.Millisecond) {
		t.Fatalf("timer recorded count=%d max=%d", h.Count(), h.MaxNs())
	}
}
