package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
)

// Handler serves the registry as expvar-style indented JSON, with a
// small runtime section (goroutines, heap) appended at request time.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		out := struct {
			Snapshot
			Runtime map[string]int64 `json:"runtime"`
		}{
			Snapshot: r.Snapshot(),
			Runtime: map[string]int64{
				"goroutines":     int64(runtime.NumGoroutine()),
				"heap_alloc":     int64(ms.HeapAlloc),
				"total_alloc":    int64(ms.TotalAlloc),
				"gc_cycles":      int64(ms.NumGC),
				"gc_pause_total": int64(ms.PauseTotalNs),
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// PromHandler serves the registry in the Prometheus text exposition
// format, or as the JSON snapshot when the client's Accept header asks
// for application/json.
func PromHandler(r *Registry) http.Handler {
	jsonH := Handler(r)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/json") {
			jsonH.ServeHTTP(w, req)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheus(w, r)
	})
}

// NewMux builds the diagnostics mux: /metrics serves the Prometheus
// text format (JSON via Accept: application/json), /debug/vars serves
// the expvar-style registry JSON, and /debug/pprof/* serves the
// standard profiler endpoints.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PromHandler(r))
	mux.Handle("/debug/vars", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the diagnostics endpoint for the registry on addr,
// returning the bound address and a closer.
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
