package obs

import (
	"context"
	"fmt"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// traceSeq hands out process-unique trace IDs. A monotonically
// increasing counter (rather than random bytes) guarantees that two
// concurrent queries can never collide and makes the "no lost or
// duplicated IDs" property testable.
var traceSeq atomic.Uint64

// spanSeq hands out process-unique span IDs, shared by every trace so
// a span can be addressed without knowing its trace.
var spanSeq atomic.Uint64

// Resources accumulates per-query resource attribution. One Resources
// value is shared by every span of a trace: concurrent morsels on the
// monet pool add into it with atomics, and the engine snapshots it
// onto the root span when the query finishes. All methods are safe on
// a nil receiver so untraced code paths pay only a nil check.
type Resources struct {
	// RowsScanned counts tuples examined by physical operators;
	// RowsReturned counts tuples in the final result.
	RowsScanned  atomic.Int64
	RowsReturned atomic.Int64

	// Morsels counts morsel tasks run on the monet pool for this
	// query. QueueWaitNs is the summed time those tasks sat in the
	// pool queue before a worker picked them up; KernelBusyNs is the
	// summed time workers spent executing them (the query's CPU time
	// inside parallel kernels).
	Morsels      atomic.Int64
	QueueWaitNs  atomic.Int64
	KernelBusyNs atomic.Int64

	// WALWaitNs is time spent waiting on write-ahead-log appends and
	// fsync group commits for mutations attributed to this query.
	WALWaitNs atomic.Int64

	// AllocBytes is the process heap-allocation delta over the query
	// (approximate: concurrent queries' allocations are not separated).
	AllocBytes atomic.Int64
}

// ResourceStat is an immutable snapshot of a Resources accumulator.
type ResourceStat struct {
	RowsScanned  int64         `json:"rows_scanned"`
	RowsReturned int64         `json:"rows_returned"`
	Morsels      int64         `json:"morsels"`
	QueueWait    time.Duration `json:"queue_wait_ns"`
	KernelBusy   time.Duration `json:"kernel_busy_ns"`
	WALWait      time.Duration `json:"wal_wait_ns"`
	AllocBytes   int64         `json:"alloc_bytes"`
}

// Stat snapshots the accumulator. Nil-safe.
func (r *Resources) Stat() ResourceStat {
	if r == nil {
		return ResourceStat{}
	}
	return ResourceStat{
		RowsScanned:  r.RowsScanned.Load(),
		RowsReturned: r.RowsReturned.Load(),
		Morsels:      r.Morsels.Load(),
		QueueWait:    time.Duration(r.QueueWaitNs.Load()),
		KernelBusy:   time.Duration(r.KernelBusyNs.Load()),
		WALWait:      time.Duration(r.WALWaitNs.Load()),
		AllocBytes:   r.AllocBytes.Load(),
	}
}

// AddScanned adds n examined tuples. Nil-safe.
func (r *Resources) AddScanned(n int) {
	if r != nil {
		r.RowsScanned.Add(int64(n))
	}
}

// AddMorsel records one pool task with its queue wait and run time.
// Nil-safe.
func (r *Resources) AddMorsel(wait, run time.Duration) {
	if r == nil {
		return
	}
	r.Morsels.Add(1)
	r.QueueWaitNs.Add(int64(wait))
	r.KernelBusyNs.Add(int64(run))
}

// AddWALWait records time blocked on the journal. Nil-safe.
func (r *Resources) AddWALWait(d time.Duration) {
	if r != nil {
		r.WALWaitNs.Add(int64(d))
	}
}

// String renders the snapshot in the key=value form used by TRACEDUMP
// and the slow-query log.
func (st ResourceStat) String() string {
	return fmt.Sprintf(
		"rows_scanned=%d rows_returned=%d morsels=%d queue_wait=%s kernel_busy=%s wal_wait=%s alloc_bytes=%d",
		st.RowsScanned, st.RowsReturned, st.Morsels,
		FormatDuration(st.QueueWait), FormatDuration(st.KernelBusy),
		FormatDuration(st.WALWait), st.AllocBytes)
}

// Trace is one completed query trace retained in a TraceRing.
type Trace struct {
	ID       string
	Query    string
	Start    time.Time
	Duration time.Duration
	Err      string
	Res      ResourceStat
	Root     *Span
}

// TraceRing retains the most recent completed traces in a fixed-size
// ring so TRACEDUMP can inspect them after the fact. Memory is bounded
// by the ring capacity times the (capped) span-tree size per query.
type TraceRing struct {
	mu      sync.Mutex
	entries []Trace
	next    int
	cap     int
}

// NewTraceRing returns a ring retaining up to capacity traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{cap: capacity}
}

// DefaultTraces is the process-wide ring the engine and server record
// completed query traces into.
var DefaultTraces = NewTraceRing(64)

// Add retains a completed trace, evicting the oldest when full.
func (tr *TraceRing) Add(t Trace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.entries) < tr.cap {
		tr.entries = append(tr.entries, t)
		return
	}
	tr.entries[tr.next] = t
	tr.next = (tr.next + 1) % tr.cap
}

// Get returns the retained trace with the given ID.
func (tr *TraceRing) Get(id string) (Trace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.entries {
		if tr.entries[i].ID == id {
			return tr.entries[i], true
		}
	}
	return Trace{}, false
}

// Recent returns the retained traces, newest first.
func (tr *TraceRing) Recent() []Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Trace, 0, len(tr.entries))
	if len(tr.entries) == tr.cap {
		out = append(out, tr.entries[tr.next:]...)
		out = append(out, tr.entries[:tr.next]...)
	} else {
		out = append(out, tr.entries...)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Len returns the number of retained traces.
func (tr *TraceRing) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.entries)
}

// ctxKey is the private context key carrying the active span.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the active trace
// span. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil when
// the request is untraced (including a nil ctx).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// HeapAllocBytes returns the cumulative bytes allocated on the heap by
// the process, from runtime/metrics. The engine differences two reads
// to approximate a query's allocation footprint.
func HeapAllocBytes() int64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return int64(s[0].Value.Uint64())
	}
	return 0
}
