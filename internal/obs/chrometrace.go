package obs

import (
	"encoding/json"
	"strconv"
	"time"
)

// ChromeEvent is one complete event ("ph":"X") in the Chrome
// trace-event format, loadable by about:tracing and Perfetto.
// Timestamps and durations are microseconds; Ts is relative to the
// trace root so exported traces start at zero.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTraceFile is the object form of the trace-event format.
type ChromeTraceFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace flattens a span tree into complete events, depth-first
// so parents precede children. Open spans export their elapsed time.
func ChromeTrace(root *Span) []ChromeEvent {
	if root == nil {
		return nil
	}
	var out []ChromeEvent
	var walk func(s *Span)
	epoch := root.StartTime()
	walk = func(s *Span) {
		args := map[string]string{"span_id": itoa64(s.ID())}
		if tid := s.TraceID(); tid != "" {
			args["trace_id"] = tid
		}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Val
		}
		out = append(out, ChromeEvent{
			Name: s.Name(),
			Cat:  "cobra",
			Ph:   "X",
			Ts:   micros(s.StartTime().Sub(epoch)),
			Dur:  micros(s.Duration()),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

// ChromeTraceJSON renders the span tree as a trace-event JSON document
// ready to load into about:tracing or ui.perfetto.dev.
func ChromeTraceJSON(root *Span) ([]byte, error) {
	f := ChromeTraceFile{
		TraceEvents:     ChromeTrace(root),
		DisplayTimeUnit: "ms",
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []ChromeEvent{}
	}
	return json.Marshal(f)
}

func micros(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d) / float64(time.Microsecond)
}

func itoa64(v uint64) string {
	return strconv.FormatUint(v, 10)
}
