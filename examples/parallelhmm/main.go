// Parallelhmm: the paper's Fig. 3/4 scenario — six tennis-stroke HMMs
// evaluated in parallel through the MIL procedure mechanism, including
// the quant1 observation quantization and the reverse().find(max)
// winner selection.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cobra/internal/ext"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/monet"
)

// strokes are the six models of Fig. 4.
var strokes = []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"}

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Train six stroke models on synthetic stroke sequences: each
	//    stroke emits its own symbol region most of the time.
	pool := hmm.NewEnginePool(7) // threadcnt(7): coordinator + 6 engines
	symbols := hmm.SymbolSpace(4, 2)
	for i, name := range strokes {
		m := hmm.NewModel(name, 3, symbols)
		m.Randomize(rng)
		var seqs [][]int
		for s := 0; s < 12; s++ {
			seqs = append(seqs, strokeSequence(i, symbols, 60, rng))
		}
		if _, err := m.Train(seqs, hmm.DefaultTrainConfig()); err != nil {
			log.Fatal(err)
		}
		if err := pool.Register(m); err != nil {
			log.Fatal(err)
		}
	}

	// 2. A fresh "Smash" clip: quantize four feature streams into one
	//    observation sequence (the quant1 step of Fig. 4).
	f1s, f2s, f3s, f4s := strokeFeatures(2, 60, rng)
	obs, err := hmm.Quantize([][]float64{f1s, f2s, f3s, f4s}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Classify via the engine pool (parallel evaluation).
	start := time.Now()
	evals, err := pool.EvaluateAll(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel evaluation of %d models took %v\n", len(evals), time.Since(start))
	for _, e := range evals {
		fmt.Printf("  %-16s log-likelihood %.1f\n", e.Model, e.LogLikelihood)
	}
	fmt.Printf("winner: %s\n\n", evals[0].Model)

	// 4. The same flow as a MIL procedure, mirroring Fig. 4: hmmOneCall
	//    is registered the way a MEL extension module would be.
	interp := mil.NewInterp(monet.NewStore())
	ext.RegisterHMM(interp, pool)
	obsBAT := monet.NewBAT(monet.Void, monet.IntT)
	for _, o := range obs {
		obsBAT.MustInsert(monet.VoidValue(), monet.NewInt(int64(o)))
	}
	interp.SetGlobal("Obs", mil.BATValue(obsBAT))

	script := `
		VAR parEval := new(str, dbl);
		VAR BrProcesa := threadcnt(7);
		PARALLEL {
			parEval.insert("Service",        hmmOneCall("Service", Obs));
			parEval.insert("Forehand",       hmmOneCall("Forehand", Obs));
			parEval.insert("Smash",          hmmOneCall("Smash", Obs));
			parEval.insert("Backhand",       hmmOneCall("Backhand", Obs));
			parEval.insert("VolleyBackhand", hmmOneCall("VolleyBackhand", Obs));
			parEval.insert("VolleyForehand", hmmOneCall("VolleyForehand", Obs));
		}
		VAR najmanji := parEval.max;
		VAR ret := (parEval.reverse).find(najmanji);
		RETURN ret;
	`
	v, err := interp.Exec(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIL procedure (Fig. 4 style) classified the clip as: %s\n", v.Atom.Str())
}

// strokeSequence generates an observation sequence biased toward the
// stroke's symbol region.
func strokeSequence(stroke, symbols, length int, rng *rand.Rand) []int {
	base := stroke * symbols / len(strokes)
	out := make([]int, length)
	for t := range out {
		if rng.Float64() < 0.75 {
			out[t] = (base + rng.Intn(3)) % symbols
		} else {
			out[t] = rng.Intn(symbols)
		}
	}
	return out
}

// strokeFeatures renders four [0,1] feature streams whose quantization
// reproduces strokeSequence's distribution.
func strokeFeatures(stroke, length int, rng *rand.Rand) (a, b, c, d []float64) {
	seq := strokeSequence(stroke, 16, length, rng)
	a = make([]float64, length)
	b = make([]float64, length)
	c = make([]float64, length)
	d = make([]float64, length)
	for t, s := range seq {
		a[t] = float64((s>>3)&1)*0.8 + 0.1
		b[t] = float64((s>>2)&1)*0.8 + 0.1
		c[t] = float64((s>>1)&1)*0.8 + 0.1
		d[t] = float64(s&1)*0.8 + 0.1
	}
	return a, b, c, d
}
