// Quickstart: build a Cobra video database from a simulated Formula 1
// broadcast, let the query preprocessor extract metadata on demand,
// and run content-based queries over it.
package main

import (
	"fmt"
	"log"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/monet"
	"cobra/internal/query"
)

func main() {
	// 1. A kernel store, the catalog over it, and the preprocessor.
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	pre := cobra.NewPreprocessor(cat)

	// 2. Simulated raw material: three short Grand Prix broadcasts.
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 200 // seconds per race; raise for more events
	cfg.TrainDur = 120
	cfg.EMIterations = 3
	corpus := f1.NewCorpus(cfg)
	if err := corpus.IngestVideos(cat); err != nil {
		log.Fatal(err)
	}
	corpus.RegisterExtractors(pre)
	fmt.Println("videos:", cat.Videos())

	// 3. Queries. The first query needing highlights triggers the
	//    audio-visual DBN engine; results are then materialized, so
	//    repeated queries are instant.
	eng := query.NewEngine(pre)
	queries := []string{
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight')`,
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop')`,
		`SELECT SEGMENTS FROM german-gp WHERE TEXT CONTAINS 'PIT'`,
		`SELECT SEGMENTS FROM german-gp WHERE FEATURE('replay') > 0.5`,
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight') WITHIN 15 OF EVENT('pitstop')`,
	}
	for _, q := range queries {
		fmt.Println("\n" + q)
		res, err := eng.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			fmt.Println("  (no segments)")
		}
		for _, r := range res {
			if r.Confidence == 0 {
				continue // availability sentinel
			}
			attrs := ""
			for k, v := range r.Attrs {
				attrs += fmt.Sprintf(" %s=%s", k, v)
			}
			fmt.Printf("  [%6.1fs - %6.1fs] conf=%.2f%s\n",
				r.Interval.Start, r.Interval.End, r.Confidence, attrs)
		}
	}
}
