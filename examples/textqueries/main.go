// Textqueries: the superimposed-text chain (§5.4) in isolation —
// render caption frames, detect the shaded band, refine (min filter +
// 4x interpolation), recognize words by pattern matching, and answer
// the paper's pit-stop and winner queries through the rule engine.
package main

import (
	"fmt"
	"log"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/monet"
	"cobra/internal/query"
	"cobra/internal/synth"
	"cobra/internal/video"
	"cobra/internal/vtext"
)

func main() {
	race := synth.GenerateRace(synth.GermanGP, 240, 77)

	// Part 1: the raw recognition chain on one caption.
	var cap *synth.Caption
	for i := range race.Captions {
		if len(race.Captions[i].Words) == 2 && race.Captions[i].Words[1] == "PIT" {
			cap = &race.Captions[i]
			break
		}
	}
	if cap == nil {
		log.Fatal("no pit caption in this seed")
	}
	fmt.Printf("ground-truth caption %v visible %.1fs-%.1fs\n", cap.Words, cap.Start, cap.End)

	mid := (cap.Start + cap.End) / 2
	raw := collectFrames(race, mid, 6)
	band := vtext.MinFilterBand(raw)
	band = vtext.Interpolate4x(band)
	mask := vtext.Binarize(band, 170)
	lex := append(append([]string(nil), synth.Drivers...), "PIT", "STOP", "LAP", "WINNER", "1")
	rec := vtext.NewRecognizer(lex, 0.7)
	fmt.Println("recognized words:")
	for _, h := range rec.RecognizeBand(mask) {
		fmt.Printf("  %-12s score %.2f\n", h.Word, h.Score)
	}

	// Part 2: the same chain through the DBMS — captions become events,
	// rules derive pit stops, COQL retrieves them.
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 240
	cfg.Seed = 77
	corpus := f1.NewCorpus(cfg)
	corpus.AddRace("demo-gp", race)
	cat := cobra.NewCatalog(monet.NewStore())
	if err := corpus.IngestVideos(cat); err != nil {
		log.Fatal(err)
	}
	pre := cobra.NewPreprocessor(cat)
	corpus.RegisterExtractors(pre)
	eng := query.NewEngine(pre)

	for _, q := range []string{
		`SELECT SEGMENTS FROM demo-gp WHERE TEXT CONTAINS 'PIT'`,
		`SELECT SEGMENTS FROM demo-gp WHERE EVENT('pitstop')`,
		`SELECT SEGMENTS FROM demo-gp WHERE EVENT('winner')`,
	} {
		fmt.Println("\n" + q)
		res, err := eng.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		shown := 0
		for _, r := range res {
			if r.Confidence == 0 {
				continue
			}
			attrs := ""
			for k, v := range r.Attrs {
				attrs += fmt.Sprintf(" %s=%s", k, v)
			}
			fmt.Printf("  [%6.1fs - %6.1fs]%s\n", r.Interval.Start, r.Interval.End, attrs)
			shown++
		}
		if shown == 0 {
			fmt.Println("  (no segments)")
		}
	}
}

// collectFrames renders n consecutive frames around time t.
func collectFrames(race *synth.Race, t float64, n int) []*video.Frame {
	out := make([]*video.Frame, n)
	for i := range out {
		out[i] = race.RenderFrame(t + float64(i)/synth.FPS)
	}
	return out
}
