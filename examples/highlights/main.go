// Highlights: the full §5.5 fusion pipeline, step by step — simulate a
// race, extract the 17 features through the real audio/video/text
// chains, train the audio-visual DBN on a prefix, filter the race, and
// compare the detected highlights against ground truth.
package main

import (
	"fmt"
	"log"

	"cobra/internal/dbn"
	"cobra/internal/eval"
	"cobra/internal/f1"
	"cobra/internal/synth"
)

func main() {
	// 1. Simulate the German GP (the paper's training race).
	race := synth.GenerateRace(synth.GermanGP, 300, 2001)
	fmt.Printf("simulated %s GP: %.0f s, %d ground-truth events\n",
		race.Profile.Name, race.Duration, len(race.Events))

	// 2. Run the actual extractors over rendered audio and frames.
	feats, err := f1.Extract(race, f1.Options{Seed: 2001})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d clips of evidence; %d captions recognized\n",
		feats.N, len(feats.Captions))

	// 3. Build the Fig. 10 audio-visual DBN and train it with EM on the
	//    first half (6 segments, as in the paper).
	net, err := f1.NewAVDBN(true)
	if err != nil {
		log.Fatal(err)
	}
	obs := feats.AVObservations(true)
	train := obs[:len(obs)/2]
	cfg := dbn.DefaultEMConfig()
	cfg.MaxIterations = 5
	cfg.Anchor = 60
	segs := [][][]int{}
	for i := 0; i+len(train)/6 <= len(train); i += len(train) / 6 {
		segs = append(segs, train[i:i+len(train)/6])
	}
	res, err := net.LearnEM(segs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM: %d iterations, log-likelihood %.1f\n", res.Iterations, res.LogLikelihood)

	// 4. Filter the whole race with the Boyen-Koller filter and segment
	//    the Highlight marginal (threshold 0.5, min 6 s).
	filt, err := net.Filter(obs, nil)
	if err != nil {
		log.Fatal(err)
	}
	series, err := filt.MarginalSeries(f1.NodeHighlight, 1)
	if err != nil {
		log.Fatal(err)
	}
	segCfg := eval.SegmentConfig{StepDur: 0.1, Threshold: 0.5, MinDuration: 6, MergeGap: 2}
	detected := eval.Segments(series, segCfg)

	fmt.Println("\ndetected highlights:")
	for _, s := range detected {
		fmt.Printf("  [%6.1fs - %6.1fs]\n", s.Start, s.End)
	}
	fmt.Println("ground truth:")
	for _, s := range race.Highlights {
		fmt.Printf("  [%6.1fs - %6.1fs] %s\n", s.Start, s.End, s.Label)
	}
	pr := eval.Score(detected, race.Highlights)
	fmt.Printf("\nprecision %.0f%%  recall %.0f%%  (paper Table 3: 84%% / 86%%)\n",
		100*pr.Precision, 100*pr.Recall)
}
