// Compoundevents: user-defined compound events (§5.6) — the paper's
// "a user can define new compound events by specifying different
// temporal relationships among already defined events". A rule written
// in the textual DSL derives "pit-highlight" events from extracted
// highlights and pit stops; the derived events are materialized in the
// catalog and immediately queryable, "which will speed up the future
// retrieval of this event".
package main

import (
	"fmt"
	"log"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/monet"
	"cobra/internal/query"
	"cobra/internal/rules"
)

const ruleSrc = `
# A highlight near a pit stop, attributed to the pitting driver.
RULE pit-highlight:
  h: highlight CONF >= 0.3
  p: pitstop
  h OVERLAPS|OVERLAPPEDBY|DURING|CONTAINS|BEFORE|AFTER p MAXGAP 20
  => pit-highlight SET source = "rule" COPY driver = p.driver

# A fly-out shortly followed by a pit stop: likely damage.
RULE damage-stop:
  f: flyout CONF >= 0.3
  p: pitstop
  f BEFORE p MAXGAP 60
  => damage-stop COPY driver = p.driver
`

func main() {
	// Build a database over a simulated race and extract the base
	// events the rules consume.
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	pre := cobra.NewPreprocessor(cat)
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 300
	cfg.TrainDur = 150
	cfg.EMIterations = 4
	corpus := f1.NewCorpus(cfg)
	if err := corpus.IngestVideos(cat); err != nil {
		log.Fatal(err)
	}
	corpus.RegisterExtractors(pre)
	eng := query.NewEngine(pre)

	// Ensure the base metadata exists (this runs the DBN and the
	// caption rules on first touch).
	for _, q := range []string{
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight')`,
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop')`,
	} {
		if _, err := eng.Run(q); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("base events materialized:")
	for _, typ := range []string{"highlight", "pitstop", "flyout"} {
		n := 0
		for _, e := range cat.Events("german-gp", typ) {
			if e.Confidence > 0 {
				n++
			}
		}
		fmt.Printf("  %-10s %d\n", typ, n)
	}

	// Parse and apply the user's compound-event rules.
	rs, err := rules.ParseRules(ruleSrc)
	if err != nil {
		log.Fatal(err)
	}
	added, err := cobra.ApplyRules(cat, "german-gp", rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d compound events derived by %d rules\n", added, len(rs))

	// The derived types are plain event types now: queryable like any
	// extracted event, with no re-derivation cost.
	for _, q := range []string{
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('pit-highlight')`,
		`SELECT SEGMENTS FROM german-gp WHERE EVENT('damage-stop')`,
	} {
		fmt.Println("\n" + q)
		res, err := eng.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			fmt.Println("  (no segments)")
		}
		for _, r := range res {
			attrs := ""
			for k, v := range r.Attrs {
				attrs += fmt.Sprintf(" %s=%s", k, v)
			}
			fmt.Printf("  [%6.1fs - %6.1fs] conf=%.2f%s\n",
				r.Interval.Start, r.Interval.End, r.Confidence, attrs)
		}
	}
}
