// Command benchdiff compares a cobra-bench microbenchmark run against
// a committed baseline and fails when any tracked operation regresses
// past the threshold — the CI bench-gate that keeps the kernel's
// parallel-operator wins from being silently given back.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json [-threshold 0.25] [-allocs-gate 0.25] [-allow-missing Op1,Op2]
//
// Both files are cobra-bench -benchout combined JSON (see
// internal/benchfmt). Every operation in the baseline is checked: the
// command prints a per-op table and exits non-zero if any op's ns/op
// grew by more than the threshold (default +25%), disappeared from
// the current run, has a corrupt (non-positive) baseline entry, or
// ran at a different pinned pool width than the baseline (parallel
// numbers are only comparable at equal widths).
// -allocs-gate additionally fails any op whose allocs/op grew by more
// than the given fraction (0.25 = +25%), or that allocates at all when
// its baseline was allocation-free — the gate that keeps the arena and
// fused-pipeline steady-state allocation wins from being given back.
// Allocation counts are deterministic where ns/op is noisy, so the
// gate can run tight. A negative value (the default) disables it.
// -allow-missing names baseline ops — comma-separated — that may be
// absent from the current run without failing the gate, for retired
// benchmarks whose baseline entry hasn't been pruned yet. Every op
// actually dropped this way is summarized on stdout ("dropped ops:
// ...") so a PR reviewer sees exactly which coverage the run gave up,
// and allowlist entries that matched nothing are called out as stale —
// both are reminders to prune, neither fails the gate. Operations new
// in the current run pass untracked until they land in the baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cobra/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	current := flag.String("current", "BENCH_pr.json", "freshly measured results")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed ns/op growth (0.25 = +25%)")
	allocsGate := flag.Float64("allocs-gate", -1, "maximum allowed allocs/op growth (0.25 = +25%); negative disables the gate")
	allowMissing := flag.String("allow-missing", "", "comma-separated baseline ops allowed to be absent from the current run")
	flag.Parse()

	base, err := benchfmt.Read(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := benchfmt.Read(*current)
	if err != nil {
		fatal(err)
	}
	if report(os.Stdout, base, cur, *threshold, *allocsGate, allowlist(*allowMissing)) {
		os.Exit(1)
	}
}

// allowlist parses the -allow-missing value into a set of op names.
func allowlist(s string) map[string]bool {
	set := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[name] = true
		}
	}
	return set
}

// report prints the per-op comparison table to w and returns whether
// any tracked operation regressed. Baseline ops named in allowMissing
// may be absent from the current run without failing the gate; a
// non-negative allocsGate additionally fails ops whose allocs/op grew
// past it.
func report(w io.Writer, base, cur *benchfmt.File, threshold, allocsGate float64, allowMissing map[string]bool) bool {
	fmt.Fprintf(w, "benchdiff: baseline %s/%s GOMAXPROCS=%d vs current %s/%s GOMAXPROCS=%d (threshold +%.0f%%)\n",
		base.GOOS, base.GOARCH, base.GOMAXPROCS, cur.GOOS, cur.GOARCH, cur.GOMAXPROCS, threshold*100)
	if allocsGate >= 0 {
		fmt.Fprintf(w, "benchdiff: allocs gate active (+%.0f%%)\n", allocsGate*100)
	}
	failed := false
	var dropped []string
	for _, d := range benchfmt.Compare(base, cur, threshold) {
		switch {
		case d.Missing && allowMissing[d.Name]:
			dropped = append(dropped, d.Name)
			fmt.Fprintf(w, "  skip %-24s %12.0f ns/op -> (missing, allowlisted)\n", d.Name, d.BaseNs)
		case d.Missing:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s %12.0f ns/op -> (missing from current run)\n", d.Name, d.BaseNs)
		case d.BadBaseline:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s %12.0f ns/op baseline is not positive: re-measure the baseline\n", d.Name, d.BaseNs)
		case d.WidthChanged:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s pool width changed (baseline w%d, current w%d): incomparable runs\n",
				d.Name, d.BaseWidth, d.CurWidth)
		case d.Regressed:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s %12.0f ns/op -> %12.0f ns/op (%+.1f%%)\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		case allocsGate >= 0 && d.AllocsGrewFromZero:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s %12d allocs/op -> %12d allocs/op (was allocation-free)\n",
				d.Name, d.BaseAllocs, d.CurAllocs)
		case allocsGate >= 0 && d.AllocRatio > 1+allocsGate:
			failed = true
			fmt.Fprintf(w, "  FAIL %-24s %12d allocs/op -> %12d allocs/op (%+.1f%%)\n",
				d.Name, d.BaseAllocs, d.CurAllocs, (d.AllocRatio-1)*100)
		default:
			fmt.Fprintf(w, "  ok   %-24s %12.0f ns/op -> %12.0f ns/op (%+.1f%%)\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		}
	}
	// The dropped-op summary: every tracked op the allowlist excused
	// this run, on one line a reviewer can read without scanning the
	// table. Coverage given up silently tends to stay given up.
	if len(dropped) > 0 {
		fmt.Fprintf(w, "benchdiff: dropped ops (allowlisted, absent from current run): %s\n",
			strings.Join(dropped, ", "))
	}
	if stale := unusedAllowlist(allowMissing, dropped); len(stale) > 0 {
		fmt.Fprintf(w, "benchdiff: warning: allowlist entries matched no missing baseline op (stale, prune them): %s\n",
			strings.Join(stale, ", "))
	}
	if failed {
		fmt.Fprintln(w, "benchdiff: performance regression detected")
	} else {
		fmt.Fprintln(w, "benchdiff: all tracked ops within threshold")
	}
	return failed
}

// unusedAllowlist returns the -allow-missing names that excused
// nothing this run, sorted for stable output.
func unusedAllowlist(allowMissing map[string]bool, dropped []string) []string {
	used := map[string]bool{}
	for _, name := range dropped {
		used[name] = true
	}
	var stale []string
	for name := range allowMissing {
		if !used[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	return stale
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
