package main

import (
	"strings"
	"testing"

	"cobra/internal/benchfmt"
)

func baseFile() *benchfmt.File {
	return &benchfmt.File{
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 4,
		Results: []benchfmt.Result{
			{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
			{Name: "SerialSelect1M", NsPerOp: 10_000_000},
		},
	}
}

// TestSyntheticRegressionFails is the bench-gate acceptance check: a
// synthetic 25%+ slowdown on one tracked op must fail the comparison.
func TestSyntheticRegressionFails(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 5_000_000}, // +25% exactly: allowed
		{Name: "SerialSelect1M", NsPerOp: 12_600_000},  // +26%: regression
	}}
	var b strings.Builder
	if !report(&b, baseFile(), cur, 0.25) {
		t.Fatalf("synthetic 26%% regression passed the gate:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "FAIL SerialSelect1M") {
		t.Fatalf("regressed op not named:\n%s", out)
	}
	if !strings.Contains(out, "ok   ParallelSelect1M") {
		t.Fatalf("+25%%-exact op should pass:\n%s", out)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_100_000},
		{Name: "SerialSelect1M", NsPerOp: 9_000_000},
	}}
	var b strings.Builder
	if report(&b, baseFile(), cur, 0.25) {
		t.Fatalf("in-threshold run failed the gate:\n%s", b.String())
	}
}

func TestMissingOpFails(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
	}}
	var b strings.Builder
	if !report(&b, baseFile(), cur, 0.25) {
		t.Fatal("missing tracked op passed the gate")
	}
	if !strings.Contains(b.String(), "missing from current run") {
		t.Fatalf("missing op not reported:\n%s", b.String())
	}
}
