package main

import (
	"strings"
	"testing"

	"cobra/internal/benchfmt"
)

func baseFile() *benchfmt.File {
	return &benchfmt.File{
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 4,
		Results: []benchfmt.Result{
			{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
			{Name: "SerialSelect1M", NsPerOp: 10_000_000},
		},
	}
}

// TestSyntheticRegressionFails is the bench-gate acceptance check: a
// synthetic 25%+ slowdown on one tracked op must fail the comparison.
func TestSyntheticRegressionFails(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 5_000_000}, // +25% exactly: allowed
		{Name: "SerialSelect1M", NsPerOp: 12_600_000},  // +26%: regression
	}}
	var b strings.Builder
	if !report(&b, baseFile(), cur, 0.25, -1, nil) {
		t.Fatalf("synthetic 26%% regression passed the gate:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "FAIL SerialSelect1M") {
		t.Fatalf("regressed op not named:\n%s", out)
	}
	if !strings.Contains(out, "ok   ParallelSelect1M") {
		t.Fatalf("+25%%-exact op should pass:\n%s", out)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_100_000},
		{Name: "SerialSelect1M", NsPerOp: 9_000_000},
	}}
	var b strings.Builder
	if report(&b, baseFile(), cur, 0.25, -1, nil) {
		t.Fatalf("in-threshold run failed the gate:\n%s", b.String())
	}
}

func TestMissingOpFails(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
	}}
	var b strings.Builder
	if !report(&b, baseFile(), cur, 0.25, -1, nil) {
		t.Fatal("missing tracked op passed the gate")
	}
	if !strings.Contains(b.String(), "missing from current run") {
		t.Fatalf("missing op not reported:\n%s", b.String())
	}
}

// TestAllowMissingSkips lets a retired benchmark's baseline entry be
// absent from the current run without failing, while a non-allowlisted
// missing op still fails.
func TestAllowMissingSkips(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
	}}
	var b strings.Builder
	if report(&b, baseFile(), cur, 0.25, -1, allowlist("SerialSelect1M")) {
		t.Fatalf("allowlisted missing op failed the gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "skip SerialSelect1M") {
		t.Fatalf("allowlisted op not reported as skipped:\n%s", b.String())
	}
	b.Reset()
	if !report(&b, baseFile(), cur, 0.25, -1, allowlist("SomeOtherOp")) {
		t.Fatal("non-allowlisted missing op passed the gate")
	}
}

// TestZeroBaselineFails guards the ratio math: a corrupt baseline
// entry with 0 ns/op must fail loudly instead of computing Ratio=0
// and waving any slowdown through.
func TestZeroBaselineFails(t *testing.T) {
	base := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 0},
	}}
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 9_000_000_000},
	}}
	var b strings.Builder
	if !report(&b, base, cur, 0.25, -1, nil) {
		t.Fatalf("zero-ns/op baseline passed the gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "baseline is not positive") {
		t.Fatalf("bad baseline not called out:\n%s", b.String())
	}
}

// TestAllocsGate exercises the -allocs-gate paths: growth past the
// gate fails, growth within it passes, growth from an allocation-free
// baseline fails regardless of ratio, and a disabled gate (negative)
// ignores allocations entirely.
func TestAllocsGate(t *testing.T) {
	base := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelGroupAgg1M", NsPerOp: 4_000_000, AllocsPerOp: 400},
		{Name: "ZeroAllocOp", NsPerOp: 1_000_000, AllocsPerOp: 0},
	}}
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelGroupAgg1M", NsPerOp: 4_000_000, AllocsPerOp: 520}, // +30% allocs
		{Name: "ZeroAllocOp", NsPerOp: 1_000_000, AllocsPerOp: 0},
	}}
	var b strings.Builder
	if !report(&b, base, cur, 0.25, 0.25, nil) {
		t.Fatalf("+30%% allocs growth passed the gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "FAIL ParallelGroupAgg1M") || !strings.Contains(b.String(), "allocs/op") {
		t.Fatalf("allocs regression not named:\n%s", b.String())
	}

	b.Reset()
	cur.Results[0].AllocsPerOp = 480 // +20%: within the gate
	if report(&b, base, cur, 0.25, 0.25, nil) {
		t.Fatalf("in-gate allocs growth failed:\n%s", b.String())
	}

	b.Reset()
	cur.Results[1].AllocsPerOp = 3 // growth from an allocation-free baseline
	if !report(&b, base, cur, 0.25, 0.25, nil) {
		t.Fatalf("growth from zero allocs passed the gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "was allocation-free") {
		t.Fatalf("zero-baseline growth not called out:\n%s", b.String())
	}

	b.Reset()
	cur.Results[0].AllocsPerOp = 40_000 // wildly worse, but the gate is off
	if report(&b, base, cur, 0.25, -1, nil) {
		t.Fatalf("disabled allocs gate still failed the run:\n%s", b.String())
	}
}

func TestAllowlistParsing(t *testing.T) {
	set := allowlist(" A, B ,,C")
	for _, name := range []string{"A", "B", "C"} {
		if !set[name] {
			t.Fatalf("%s missing from allowlist %v", name, set)
		}
	}
	if len(allowlist("")) != 0 {
		t.Fatal("empty flag should yield an empty allowlist")
	}
}

// TestDroppedOpsSummarized checks the reviewer-facing summary: every
// allowlist-excused op is named on one "dropped ops" line.
func TestDroppedOpsSummarized(t *testing.T) {
	base := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
		{Name: "RetiredA", NsPerOp: 1_000_000},
		{Name: "RetiredB", NsPerOp: 2_000_000},
	}}
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
	}}
	var b strings.Builder
	if report(&b, base, cur, 0.25, -1, allowlist("RetiredA,RetiredB")) {
		t.Fatalf("allowlisted run failed the gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "dropped ops (allowlisted, absent from current run): RetiredA, RetiredB") {
		t.Fatalf("dropped-op summary missing:\n%s", b.String())
	}
	if strings.Contains(b.String(), "stale") {
		t.Fatalf("fully used allowlist flagged as stale:\n%s", b.String())
	}
}

// TestStaleAllowlistWarned checks that entries excusing nothing — a
// typo, or an op since restored to the run — are called out without
// failing the gate.
func TestStaleAllowlistWarned(t *testing.T) {
	cur := &benchfmt.File{Results: []benchfmt.Result{
		{Name: "ParallelSelect1M", NsPerOp: 4_000_000},
		{Name: "SerialSelect1M", NsPerOp: 10_000_000},
	}}
	var b strings.Builder
	if report(&b, baseFile(), cur, 0.25, -1, allowlist("SerialSelect1M,NoSuchOp")) {
		t.Fatalf("stale allowlist failed the gate:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "matched no missing baseline op (stale, prune them): NoSuchOp, SerialSelect1M") {
		t.Fatalf("stale entries not warned:\n%s", out)
	}
	if strings.Contains(out, "dropped ops") {
		t.Fatalf("nothing was dropped but a summary printed:\n%s", out)
	}
}
