// Command cobra-ingest simulates the three Grand Prix broadcasts, runs
// the complete extraction pipeline (features, captions, excited
// speech, highlights, rule-derived events) and persists the resulting
// database for cobra-cli and cobra-server to load.
//
// Usage:
//
//	cobra-ingest -out ./f1db [-dur 300] [-train 150] [-seed 2001] [-em 5]
//	cobra-ingest -data-dir ./cobra-data [...]
//
// With -out, the store is dumped as a plain snapshot directory at the
// end of the run (for cobra-server -db). With -data-dir, the run is
// durable from the first BAT: every Put is write-ahead logged as
// extraction proceeds, so a crash mid-ingest loses nothing already
// extracted, and a final checkpoint leaves a replay-free directory for
// cobra-server -data-dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/monet"
	"cobra/internal/wal"
)

func main() {
	out := flag.String("out", "f1db", "snapshot output directory")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoint) instead of -out")
	dur := flag.Float64("dur", 300, "simulated race duration in seconds")
	train := flag.Float64("train", 150, "training prefix in seconds")
	seed := flag.Int64("seed", 2001, "simulation seed")
	em := flag.Int("em", 5, "EM iterations for the DBN engines")
	flag.Parse()

	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = *dur
	cfg.TrainDur = *train
	cfg.Seed = *seed
	cfg.EMIterations = *em

	corpus := f1.NewCorpus(cfg)
	store := monet.NewStore()
	var mgr *wal.Manager
	if *dataDir != "" {
		var err error
		// Interval sync: ingest is a bulk load, the final checkpoint
		// makes it durable; per-Put fsync would only slow it down.
		mgr, err = wal.Open(*dataDir, store, wal.Options{Sync: wal.SyncInterval})
		if err != nil {
			fatal(err)
		}
	}
	cat := cobra.NewCatalog(store)
	if err := corpus.IngestVideos(cat); err != nil {
		fatal(err)
	}
	pre := cobra.NewPreprocessor(cat)
	corpus.RegisterExtractors(pre)

	// Materialize everything for every video.
	var reqs []cobra.Requirement
	for _, name := range f1.FeatureNames {
		reqs = append(reqs, cobra.Requirement{Kind: cobra.NeedFeature, Name: name})
	}
	for _, typ := range []string{
		f1.EventCaption, f1.EventExcited, f1.EventHighlight,
		f1.EventStart, f1.EventFlyOut, f1.EventPassing,
		f1.EventPitStop, f1.EventWinner,
	} {
		reqs = append(reqs, cobra.Requirement{Kind: cobra.NeedEvents, Name: typ})
	}
	reqs = append(reqs, cobra.Requirement{Kind: cobra.NeedObjects, Name: ""})
	for _, video := range cat.Videos() {
		start := time.Now()
		plan, err := pre.Ensure(video, reqs, 0.5)
		if err != nil {
			fatal(fmt.Errorf("extracting %s: %w", video, err))
		}
		fmt.Printf("%-12s extracted via %v in %.1fs\n", video, plan.Ran, time.Since(start).Seconds())
	}
	if mgr != nil {
		// Final checkpoint + clean close: cobra-server -data-dir picks
		// this up with zero replay.
		if err := mgr.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("durable database with %d BATs checkpointed to %s\n", store.Len(), *dataDir)
		return
	}
	if err := store.Snapshot(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot with %d BATs written to %s\n", store.Len(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-ingest:", err)
	os.Exit(1)
}
