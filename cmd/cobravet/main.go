// Command cobravet runs the project's own static-analysis suite — the
// invariants gofmt and go vet cannot see — over the module, using the
// dependency-free framework in internal/vet:
//
//	spanend    obs spans must be finished on every path
//	ctxspan    span-starting functions must take a context.Context or
//	           *obs.Span to join a trace, and finish spans in-block
//	gofatal    no t.Fatal-class calls from spawned test goroutines
//	storelock  Journal* hooks must not call back into monet.Store
//	errwrap    fmt.Errorf over an error must wrap with %w
//	poolleak   monet pool batches must be Waited (and NewPool closed)
//	           on every return path
//
// Usage:
//
//	cobravet [-list] [package ...]
//
// With no packages the whole module is checked. Package arguments are
// import paths ("cobra/internal/wal") or module-relative directories
// ("./internal/wal"). Findings print as file:line:col lines and the
// exit status is 1 when there are any, 2 on load failures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cobra/internal/vet"
	"cobra/internal/vet/analyzers"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	loader, err := vet.NewLoader(".")
	if err != nil {
		fail(err)
	}
	paths := flag.Args()
	if len(paths) == 0 {
		paths, err = loader.ModulePackages()
		if err != nil {
			fail(err)
		}
	}
	pkgs := make([]*vet.Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := loader.Load(normalize(loader, p))
		if err != nil {
			fail(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := vet.Run(pkgs, analyzers.All)
	if err != nil {
		fail(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cobravet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// normalize maps "./internal/wal"-style directory arguments onto
// import paths.
func normalize(l *vet.Loader, arg string) string {
	if !strings.HasPrefix(arg, ".") {
		return arg
	}
	return l.ModPath + "/" + filepath.ToSlash(strings.TrimPrefix(filepath.Clean(arg), "./"))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cobravet:", err)
	os.Exit(2)
}
