// Command cobravet runs the project's own static-analysis suite — the
// invariants gofmt and go vet cannot see — over the module, using the
// dependency-free framework in internal/vet. Run -list for the
// catalogue (docs/ANALYZERS.md documents each check in full); the
// suite spans per-package checks (spanend … epochguard, allowlint) and
// module-wide interprocedural checks (lockorder, goleak, allochot,
// chansend) built on the framework's call graph, function summaries
// and fact store.
//
// Usage:
//
//	cobravet [-list] [-json] [-v] [-analyzer name[,name...]] [package ...]
//
// With no packages (or "./...") the whole module is checked. Package
// arguments are import paths ("cobra/internal/wal") or module-relative
// directories ("./internal/wal"). Findings print as file:line:col
// lines — or, under -json, as one machine-readable JSON object with
// stable analyzer codes — and the exit status is 1 when there are any
// findings, 2 on load failure. -v prints per-analyzer wall time to
// stderr; -analyzer restricts the run to a comma-separated subset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cobra/internal/vet"
	"cobra/internal/vet/analyzers"
)

// jsonDiagnostic is one finding in -json output; File is relative to
// the module root so output is stable across checkouts.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Code     string `json:"code"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the -json top-level object.
type jsonReport struct {
	Findings []jsonDiagnostic `json:"findings"`
	Count    int              `json:"count"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status abstracted, so the
// golden test can drive the real flag/load/report path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobravet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	asJSON := fs.Bool("json", false, "emit findings as one JSON object")
	verbose := fs.Bool("v", false, "print per-analyzer wall time to stderr")
	only := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All {
			fmt.Fprintf(stdout, "%s %-10s %s\n", a.Code, a.Name, a.Doc)
		}
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "cobravet:", err)
		return 2
	}
	suite := analyzers.All
	if *only != "" {
		byName := map[string]*vet.Analyzer{}
		for _, a := range analyzers.All {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fail(fmt.Errorf("unknown analyzer %q (see -list)", name))
			}
			suite = append(suite, a)
		}
	}

	loader, err := vet.NewLoader(".")
	if err != nil {
		return fail(err)
	}
	paths := fs.Args()
	if len(paths) == 0 || (len(paths) == 1 && strings.HasSuffix(paths[0], "...")) {
		paths, err = loader.ModulePackages()
		if err != nil {
			return fail(err)
		}
	}
	pkgs := make([]*vet.Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := loader.Load(normalize(loader, p))
		if err != nil {
			return fail(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, timings, err := vet.RunAll(loader, pkgs, suite)
	if err != nil {
		return fail(err)
	}
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "cobravet: %-14s %s\n", tm.Analyzer, tm.Elapsed.Round(10_000))
		}
	}
	if *asJSON {
		report := jsonReport{Findings: []jsonDiagnostic{}, Count: len(diags)}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonDiagnostic{
				Analyzer: d.Analyzer,
				Code:     d.Code,
				File:     relToModule(loader.ModRoot, d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cobravet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relToModule renders filename relative to the module root when it is
// inside it.
func relToModule(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// normalize maps "./internal/wal"-style directory arguments onto
// import paths.
func normalize(l *vet.Loader, arg string) string {
	if !strings.HasPrefix(arg, ".") {
		return arg
	}
	return l.ModPath + "/" + filepath.ToSlash(strings.TrimPrefix(filepath.Clean(arg), "./"))
}
