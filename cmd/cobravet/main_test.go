package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestJSONGolden drives the real flag/load/report path over the
// allowlint fixture and compares -json output byte-for-byte against
// the checked-in golden file: file paths must be module-relative,
// codes stable, findings ordered by position. Run with -update to
// regenerate after an intentional change.
func TestJSONGolden(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{
		"-json", "-analyzer", "allowlint",
		"./internal/vet/analyzers/testdata/allowlint",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings present); stderr:\n%s", code, errs.String())
	}

	golden := filepath.Join("testdata", "allowlint.golden.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, out.Bytes(), want)
	}

	// The golden bytes must stay machine-readable with the documented
	// shape, independent of formatting.
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Count != len(report.Findings) || report.Count == 0 {
		t.Fatalf("count = %d, findings = %d; want equal and nonzero", report.Count, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Analyzer == "" || f.Code == "" || f.File == "" || f.Line == 0 || f.Col == 0 {
			t.Errorf("finding missing required field: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file %q is absolute; want module-relative", f.File)
		}
	}
}

// TestListIncludesCodes keeps -list an accurate, stable catalogue:
// every line leads with a CVnnn code, and the four interprocedural
// analyzers are present.
func TestListIncludesCodes(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errs.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("-list printed %d analyzers, want >= 12:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "CV0") {
			t.Errorf("list line missing code prefix: %q", l)
		}
	}
	for _, name := range []string{"lockorder", "goleak", "allochot", "chansend"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list is missing analyzer %q", name)
		}
	}
}

// TestUnknownAnalyzerFails pins the load-failure exit code.
func TestUnknownAnalyzerFails(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-analyzer", "nosuch"}, &out, &errs); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errs.String())
	}
	if !strings.Contains(errs.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %q", errs.String())
	}
}
