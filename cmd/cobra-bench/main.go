// Command cobra-bench regenerates every table and figure of the
// paper's evaluation (§5.5) on simulated Formula 1 broadcasts and
// prints measured precision/recall next to the paper's numbers.
//
// Usage:
//
//	cobra-bench [-dur 600] [-train 300] [-seed 2001] [-em 10] [-run all]
//	cobra-bench -run micro [-benchout DIR | -benchout FILE.json]
//
// -run selects one experiment: table1, table2, table3, table4, fig9,
// temporal, clustering, shots, audiovsav, keywords, parallelhmm, all.
// "micro" (not part of "all") runs kernel/engine microbenchmarks —
// including serial-vs-parallel pairs of the kernel's morsel-parallel
// select/aggregate/join over 1M-row BATs — and prints the parallel
// speedup per operator. With -benchout ending in .json, all results
// are written as one combined machine-readable file (the format
// cmd/benchdiff and the CI bench-gate consume; the committed
// BENCH_baseline.json is produced this way); otherwise -benchout names
// a directory receiving one BENCH_<op>.json per benchmark.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"cobra/internal/f1"
	"cobra/internal/hmm"
)

// benchOut is the -benchout directory ("" disables BENCH_*.json files).
var benchOut string

func main() {
	dur := flag.Float64("dur", 600, "simulated race duration in seconds")
	train := flag.Float64("train", 300, "training prefix in seconds")
	seed := flag.Int64("seed", 2001, "simulation seed")
	em := flag.Int("em", 10, "EM iterations")
	run := flag.String("run", "all", "experiment to run")
	flag.StringVar(&benchOut, "benchout", "", "microbenchmark result output: a .json path for one combined file, else a directory for BENCH_*.json (empty: print only)")
	flag.Parse()

	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = *dur
	cfg.TrainDur = *train
	cfg.Seed = *seed
	cfg.EMIterations = *em
	lab := f1.NewLab(cfg)

	want := strings.ToLower(*run)
	ok := true
	for _, exp := range experiments {
		if want != "all" && want != exp.name {
			continue
		}
		if exp.name == "micro" && want != "micro" {
			continue // microbenchmarks only run when requested explicitly
		}
		fmt.Printf("=== %s: %s ===\n", exp.name, exp.title)
		start := time.Now()
		if err := exp.fn(lab); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", exp.name, err)
			ok = false
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
	}
	if !ok {
		os.Exit(1)
	}
}

type experiment struct {
	name  string
	title string
	fn    func(*f1.Lab) error
}

var experiments = []experiment{
	{"table1", "BN structures vs fully parameterized DBN (excited speech, German GP)", runTable1},
	{"table2", "audio DBN generalization (Belgian and USA GP)", runTable2},
	{"table3", "audio-visual DBN on the German GP", runTable3},
	{"table4", "audio-visual DBN with/without the passing sub-network", runTable4},
	{"fig9", "BN vs DBN inference smoothness over a 300 s clip", runFig9},
	{"temporal", "temporal-dependency variants (Fig. 8 et al.)", runTemporal},
	{"clustering", "Boyen-Koller clustering experiment", runClustering},
	{"shots", "histogram shot-detection accuracy", runShots},
	{"audiovsav", "audio-only vs audio-visual highlight coverage", runAudioVsAV},
	{"keywords", "keyword-spotting acoustic models (clean vs TV news)", runKeywords},
	{"parallelhmm", "parallel evaluation of 6 HMMs (Figs. 3-4)", runParallelHMM},
	{"ablation-quant", "ablation: evidence quantization levels", runQuantAblation},
	{"ablation-anchor", "ablation: anchored vs plain EM for the AV network", runAnchorAblation},
	{"micro", "kernel/engine microbenchmarks (BENCH_*.json)", runMicro},
}

func runQuantAblation(lab *f1.Lab) error {
	rows, err := lab.QuantizationAblation()
	if err != nil {
		return err
	}
	printRows(rows)
	return nil
}

func runAnchorAblation(lab *f1.Lab) error {
	rows, err := lab.AnchorAblation()
	if err != nil {
		return err
	}
	printRows(rows)
	fmt.Println("  (without anchoring, EM decouples sub-event nodes from the query node)")
	return nil
}

func printRows(rows []f1.Row) {
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
}

func runTable1(lab *f1.Lab) error {
	rows, err := lab.Table1()
	if err != nil {
		return err
	}
	printRows(rows)
	return nil
}

func runTable2(lab *f1.Lab) error {
	rows, err := lab.Table2()
	if err != nil {
		return err
	}
	printRows(rows)
	return nil
}

func runTable3(lab *f1.Lab) error {
	rows, err := lab.Table3()
	if err != nil {
		return err
	}
	printRows(rows)
	return nil
}

func runTable4(lab *f1.Lab) error {
	rows, err := lab.Table4()
	if err != nil {
		return err
	}
	printRows(rows)
	return nil
}

func runFig9(lab *f1.Lab) error {
	r, err := lab.Fig9()
	if err != nil {
		return err
	}
	fmt.Printf("  BN  roughness %.4f (jagged, needs accumulation)\n", r.BNRough)
	fmt.Printf("  DBN roughness %.4f (smooth, direct threshold)\n", r.DBNRough)
	fmt.Println("  series (downsampled to 60 columns, '#' = BN, 'o' = DBN):")
	fmt.Println("  BN  " + sparkline(r.BN))
	fmt.Println("  DBN " + sparkline(r.DBN))
	return nil
}

// sparkline renders a probability series as a coarse text plot.
func sparkline(series []float64) string {
	const cols = 60
	glyphs := []rune(" .:-=+*#%@")
	if len(series) == 0 {
		return ""
	}
	out := make([]rune, cols)
	for c := 0; c < cols; c++ {
		lo := c * len(series) / cols
		hi := (c + 1) * len(series) / cols
		if hi <= lo {
			hi = lo + 1
		}
		m := 0.0
		for i := lo; i < hi && i < len(series); i++ {
			if series[i] > m {
				m = series[i]
			}
		}
		g := int(m * float64(len(glyphs)-1))
		out[c] = glyphs[g]
	}
	return string(out)
}

func runTemporal(lab *f1.Lab) error {
	rows, err := lab.TemporalDeps()
	if err != nil {
		return err
	}
	printRows(rows)
	fmt.Println("  (paper: Fig. 8 wiring significantly beats to-query, slightly beats corresponding)")
	return nil
}

func runClustering(lab *f1.Lab) error {
	r, err := lab.Clustering()
	if err != nil {
		return err
	}
	fmt.Printf("  exact (1 cluster):   P=%5.1f%% R=%5.1f%%  misclassified=%d\n",
		100*r.Exact.Precision, 100*r.Exact.Recall, r.ExactMisclassified)
	fmt.Printf("  clustered (BK):      P=%5.1f%% R=%5.1f%%  misclassified=%d\n",
		100*r.Clustered.Precision, 100*r.Clustered.Recall, r.ClusteredMisclassified)
	fmt.Printf("  mean |Δmarginal| = %.5f (projection error)\n", r.MeanAbsDiff)
	return nil
}

func runShots(lab *f1.Lab) error {
	acc, err := lab.ShotAccuracy()
	if err != nil {
		return err
	}
	fmt.Printf("  boundary recall %.1f%% (paper: accuracy over 90%%)\n", 100*acc)
	return nil
}

func runAudioVsAV(lab *f1.Lab) error {
	r, err := lab.AudioVsAV()
	if err != nil {
		return err
	}
	fmt.Printf("  audio-only coverage of interesting segments: %5.1f%% (paper ~50%%)\n", 100*r.AudioCoverage)
	fmt.Printf("  audio-visual coverage:                       %5.1f%% (paper ~80%%)\n", 100*r.AVCoverage)
	return nil
}

func runKeywords(lab *f1.Lab) error {
	r, err := lab.KeywordModels()
	if err != nil {
		return err
	}
	fmt.Printf("  clean-speech model: recall %5.1f%% precision %5.1f%%\n", 100*r.CleanRecall, 100*r.CleanPrecision)
	fmt.Printf("  TV-news model:      recall %5.1f%% precision %5.1f%% (paper: clearly better)\n",
		100*r.TVNewsRecall, 100*r.TVNewsPrecision)
	return nil
}

// runParallelHMM measures serial vs parallel evaluation of six stroke
// models, the paper's Fig. 3/4 speedup.
func runParallelHMM(*f1.Lab) error {
	rng := rand.New(rand.NewSource(7))
	names := []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"}
	serial := hmm.NewEnginePool(1)
	parallel := hmm.NewEnginePool(7) // threadcnt(7): coordinator + 6 engines
	for _, name := range names {
		m := hmm.NewModel(name, 12, 32)
		m.Randomize(rng)
		if err := serial.Register(m); err != nil {
			return err
		}
		if err := parallel.Register(m); err != nil {
			return err
		}
	}
	obs := make([]int, 20000)
	for i := range obs {
		obs[i] = rng.Intn(32)
	}
	timeIt := func(p *hmm.EnginePool) (time.Duration, error) {
		start := time.Now()
		const reps = 5
		for r := 0; r < reps; r++ {
			if _, err := p.EvaluateAll(obs); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / reps, nil
	}
	ts, err := timeIt(serial)
	if err != nil {
		return err
	}
	tp, err := timeIt(parallel)
	if err != nil {
		return err
	}
	fmt.Printf("  serial evaluation of 6 HMMs:   %v\n", ts)
	fmt.Printf("  parallel evaluation (6 engines): %v  (speedup %.2fx on %d cores)\n",
		tp, float64(ts)/float64(tp), runtime.NumCPU())
	return nil
}
