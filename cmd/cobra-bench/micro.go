package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/monet"
	"cobra/internal/query"
)

// benchResult is the machine-readable BENCH_*.json record tracking one
// operation's performance across PRs.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runMicro benchmarks one representative hot operation per level of
// the stack via testing.Benchmark and emits the results as
// BENCH_<name>.json files when -benchout is set.
func runMicro(*f1.Lab) error {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BATJoin", benchBATJoin},
		{"BATUselect", benchBATUselect},
		{"MILExec", benchMILExec},
		{"HMMEvalParallel", benchHMMEvalParallel},
		{"COQLQuery", benchCOQLQuery},
	}
	for _, bench := range benches {
		fn := bench.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		res := benchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("  %-16s %12.0f ns/op %8d allocs/op %10d B/op (%d iterations)\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
		if benchOut != "" {
			if err := writeBenchJSON(res); err != nil {
				return err
			}
		}
	}
	if benchOut != "" {
		fmt.Printf("  BENCH_*.json written to %s\n", benchOut)
	}
	return nil
}

func writeBenchJSON(res benchResult) error {
	if err := os.MkdirAll(benchOut, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(benchOut, "BENCH_"+res.Name+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func benchBATJoin(b *testing.B) {
	const n = 5000
	left := monet.NewBATCap(monet.OIDT, monet.IntT, n)
	right := monet.NewBATCap(monet.IntT, monet.StrT, n)
	for i := 0; i < n; i++ {
		left.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(int64(i)))
		right.MustInsert(monet.NewInt(int64(i)), monet.NewStr("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBATUselect(b *testing.B) {
	const n = 100000
	bat := monet.NewBATCap(monet.OIDT, monet.IntT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(int64(i%1000)))
	}
	lo, hi := monet.NewInt(100), monet.NewInt(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Uselect(lo, hi)
	}
}

func benchMILExec(b *testing.B) {
	in := mil.NewInterp(monet.NewStore())
	const prog = `VAR b := new(void,int); b.insert(nil, 41); RETURN b.sum + 1;`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Exec(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHMMEvalParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pool := hmm.NewEnginePool(7)
	for _, name := range []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"} {
		m := hmm.NewModel(name, 8, 16)
		m.Randomize(rng)
		if err := pool.Register(m); err != nil {
			b.Fatal(err)
		}
	}
	obs := make([]int, 2000)
	for i := range obs {
		obs[i] = rng.Intn(16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.EvaluateAll(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCOQLQuery(b *testing.B) {
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if err := cat.PutVideo(cobra.Video{Name: "v", Duration: 600, FPS: 10}); err != nil {
		b.Fatal(err)
	}
	events := make([]cobra.Event, 0, 200)
	for i := 0; i < 200; i++ {
		events = append(events, cobra.Event{
			Type:       "highlight",
			Interval:   cobra.Interval{Start: float64(i * 3), End: float64(i*3 + 2)},
			Confidence: 0.9,
		})
	}
	if err := cat.PutEvents("v", events); err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(cobra.NewPreprocessor(cat))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
			b.Fatal(err)
		}
	}
}
