package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"cobra/internal/benchfmt"
	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/monet"
	"cobra/internal/qcache"
	"cobra/internal/query"
	"cobra/internal/server"
	"cobra/internal/stream"
)

// microBench is one harness entry: the operation plus the kernel pool
// width it is pinned to (0 = leave the default).
type microBench struct {
	name  string
	width int
	fn    func(b *testing.B)
}

// runMicro benchmarks one representative hot operation per level of
// the stack plus serial-vs-parallel pairs of the kernel's
// morsel-parallel operators over 1M-row BATs, and a width sweep of the
// parallel operators at pool widths 1, 4 and 8 so a single combined
// file carries comparable numbers across core counts. With -benchout
// set the results are written as machine-readable JSON: one combined
// benchfmt.File when the path ends in .json (the format benchdiff and
// the CI bench-gate consume), else one legacy BENCH_<name>.json per op
// in the given directory.
func runMicro(*f1.Lab) error {
	benches := []microBench{
		{"BATJoin", 0, benchBATJoin},
		{"BATUselect", 0, benchBATUselect},
		{"MILExec", 0, benchMILExec},
		{"HMMEvalParallel", 0, benchHMMEvalParallel},
		{"COQLQuery", 0, benchCOQLQuery},
		{"SerialSelect1M", 1, benchSelect1M},
		{"ParallelSelect1M", parallelWidth(), benchSelect1M},
		{"SerialGroupAgg1M", 1, benchGroupAgg1M},
		{"ParallelGroupAgg1M", parallelWidth(), benchGroupAgg1M},
		{"SerialJoin1M", 1, benchJoin1M},
		{"ParallelJoin1M", parallelWidth(), benchJoin1M},
		{"SelectAgg1M", 1, benchUnfusedSelectAgg1M},
		{"ScanSelect1M", parallelWidth(), benchScanSelect1M},
		{"ZoneMapSelect1M", parallelWidth(), benchZoneMapSelect1M},
		{"CrackSelect1M", parallelWidth(), benchCrackSelect1M},
		{"DictEq1M", parallelWidth(), benchDictEq1M},
		{"StreamFanout/s1", 0, benchStreamFanout(1)},
		{"StreamFanout/s100", 0, benchStreamFanout(100)},
		{"StreamFanout/s1000", 0, benchStreamFanout(1000)},
		{"UncachedQuery1M", 0, benchUncachedQuery1M},
		{"CachedQuery1M", 0, benchCachedQuery1M},
		{"CacheMissEvict", 0, benchCacheMissEvict},
	}
	// The width sweep: the same parallel operator bodies pinned to 1, 4
	// and 8 workers. The per-result width field keeps the numbers
	// honest on machines whose GOMAXPROCS differs from the pool width.
	sweep := []microBench{
		{"Select1M", 0, benchSelect1M},
		{"GroupAgg1M", 0, benchGroupAgg1M},
		{"Join1M", 0, benchJoin1M},
		{"FusedSelectAgg1M", 0, benchFusedSelectAgg1M},
		{"DictGroupAgg1M", 0, benchDictGroupAgg1M},
	}
	for _, w := range []int{1, 4, 8} {
		for _, op := range sweep {
			benches = append(benches, microBench{
				name:  fmt.Sprintf("%s/w%d", op.name, w),
				width: w,
				fn:    op.fn,
			})
		}
	}
	results := make([]benchfmt.Result, 0, len(benches))
	for _, bench := range benches {
		fn := bench.fn
		if bench.width > 0 {
			fn = widthBench(bench.width, fn)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		res := benchfmt.Result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Width:       bench.width,
		}
		fmt.Printf("  %-20s %12.0f ns/op %8d allocs/op %10d B/op (%d iterations, width %d)\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations, res.Width)
		results = append(results, res)
	}
	printSpeedups(results)
	printCacheSpeedup(results)
	printStreamRates(results)
	if benchOut == "" {
		return nil
	}
	if strings.HasSuffix(benchOut, ".json") {
		f := &benchfmt.File{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Results:    results,
		}
		if err := benchfmt.Write(benchOut, f); err != nil {
			return err
		}
		fmt.Printf("  combined results written to %s\n", benchOut)
		return nil
	}
	for _, res := range results {
		if err := writeBenchJSON(res); err != nil {
			return err
		}
	}
	fmt.Printf("  BENCH_*.json written to %s\n", benchOut)
	return nil
}

// printSpeedups summarizes each Serial*/Parallel* pair as a speedup
// factor — the quickstart's serial-vs-parallel readout.
func printSpeedups(results []benchfmt.Result) {
	find := func(name string) (benchfmt.Result, bool) {
		for _, r := range results {
			if r.Name == name {
				return r, true
			}
		}
		return benchfmt.Result{}, false
	}
	for _, r := range results {
		op, ok := strings.CutPrefix(r.Name, "Serial")
		if !ok {
			continue
		}
		par, ok := find("Parallel" + op)
		if !ok || par.NsPerOp <= 0 {
			continue
		}
		fmt.Printf("  %-20s %.2fx parallel speedup on %d CPUs (pool width %d)\n",
			op, r.NsPerOp/par.NsPerOp, runtime.NumCPU(), parallelWidth())
	}
}

// printCacheSpeedup summarizes the serving headline number: how much
// faster a semantic-cache hit answers the 1M-row feature query than a
// fresh execution of the same statement.
func printCacheSpeedup(results []benchfmt.Result) {
	var uncached, cached float64
	for _, r := range results {
		switch r.Name {
		case "UncachedQuery1M":
			uncached = r.NsPerOp
		case "CachedQuery1M":
			cached = r.NsPerOp
		}
	}
	if uncached > 0 && cached > 0 {
		fmt.Printf("  %-20s %.0fx cache-hit speedup over fresh execution\n",
			"Query1M", uncached/cached)
	}
}

// printStreamRates turns each StreamFanout/sN result into the
// streaming headline number: notifications delivered per second at
// that subscriber fan-out (one live append pushes one notification to
// every subscriber).
func printStreamRates(results []benchfmt.Result) {
	for _, r := range results {
		subs, ok := strings.CutPrefix(r.Name, "StreamFanout/s")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(subs, "%d", &n); err != nil {
			continue
		}
		fmt.Printf("  %-20s %10.0f notifications/sec (%d subscribers)\n",
			r.Name, float64(n)/(r.NsPerOp/1e9), n)
	}
}

// benchStreamFanout times one live append propagated through n
// standing subscriptions: the event append, the watermark move, the
// epoch-gated re-evaluation of every subscription, and draining every
// subscriber queue. The LAST window keeps each pushed result set
// small and distinct between steps so no push is suppressed.
func benchStreamFanout(n int) func(b *testing.B) {
	return func(b *testing.B) {
		cat := cobra.NewCatalog(monet.NewStore())
		if err := cat.PutVideo(cobra.Video{Name: "live", Duration: 0.1, FPS: 10}); err != nil {
			b.Fatal(err)
		}
		if err := cat.SetLive("live", true); err != nil {
			b.Fatal(err)
		}
		m := stream.NewManager(query.NewEngine(cobra.NewPreprocessor(cat)))
		subs := make([]*stream.Subscription, n)
		for i := range subs {
			s, err := m.Subscribe("SELECT SEGMENTS FROM live WHERE EVENT('passing') LAST 5 S", nil)
			if err != nil {
				b.Fatal(err)
			}
			subs[i] = s
		}
		ctx := context.Background()
		w := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := w
			w++
			_, err := cat.AppendEvents("live", []cobra.Event{{
				Video: "live", Type: "passing", Confidence: 1,
				Interval: cobra.Interval{Start: from, End: w},
			}})
			if err != nil {
				b.Fatal(err)
			}
			if err := cat.SetDuration("live", w); err != nil {
				b.Fatal(err)
			}
			if got := m.Advance(ctx); got != n {
				b.Fatalf("Advance pushed %d notifications, want %d", got, n)
			}
			for _, s := range subs {
				for {
					if _, ok := s.TryNext(); !ok {
						break
					}
				}
			}
		}
	}
}

// parallelWidth is the pool width the Parallel* benchmarks run at: at
// least 4 so the parallel code paths are exercised even on small
// machines, matching the ≥4-core CI runners the baseline tracks.
func parallelWidth() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// widthBench pins the kernel pool to w workers for the run: width 1
// takes every operator's serial path, wider pools go morsel-parallel.
func widthBench(w int, fn func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		prev := monet.SetDefaultPoolWorkers(w)
		defer monet.SetDefaultPoolWorkers(prev)
		fn(b)
	}
}

func writeBenchJSON(res benchfmt.Result) error {
	if err := os.MkdirAll(benchOut, 0o755); err != nil {
		return err
	}
	path := filepath.Join(benchOut, "BENCH_"+res.Name+".json")
	return benchfmt.Write(path, &benchfmt.File{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    []benchfmt.Result{res},
	})
}

// bigBAT builds a [void, int] BAT of n rows with tails cycling over
// [0, mod).
func bigBAT(n, mod int) *monet.BAT {
	bat := monet.NewBATCap(monet.Void, monet.IntT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(monet.VoidValue(), monet.NewInt(int64(i%mod)))
	}
	return bat
}

// benchSelect1M range-selects ~10% of a 1M-row BAT; the pool width set
// by the Serial/Parallel wrapper decides the execution path.
func benchSelect1M(b *testing.B) {
	bat := bigBAT(1<<20, 1000)
	lo, hi := monet.NewInt(100), monet.NewInt(199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Select(lo, hi)
	}
}

// benchGroupAgg1M computes a 64-group sum over 1M rows.
func benchGroupAgg1M(b *testing.B) {
	bat := monet.NewBATCap(monet.IntT, monet.IntT, 1<<20)
	for i := 0; i < 1<<20; i++ {
		bat.MustInsert(monet.NewInt(int64(i%64)), monet.NewInt(int64(i%100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.GroupSum(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJoin1M probes 1M rows against a 100k-key build side.
func benchJoin1M(b *testing.B) {
	const keys = 100_000
	left := bigBAT(1<<20, keys)
	right := monet.NewBATCap(monet.IntT, monet.IntT, keys)
	for i := 0; i < keys; i++ {
		right.MustInsert(monet.NewInt(int64(i)), monet.NewInt(int64(i)*2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUnfusedSelectAgg1M is the operator-at-a-time select→aggregate
// baseline the fused pipeline is judged against: materialize the
// filtered BAT (the gathered intermediate the paper's MIL chains
// produce), then sum it. ~10% selectivity over 1M int rows.
func benchUnfusedSelectAgg1M(b *testing.B) {
	bat := bigBAT(1<<20, 1000)
	lo, hi := monet.NewInt(100), monet.NewInt(199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.Select(lo, hi).Sum(); err != nil {
			b.Fatal(err)
		}
	}
}

// fusedAggStore builds the fused-pipeline fixture: "bench/val", a
// 1M-row int column cycling [0, 1000), and "bench/cat", an aligned
// 64-label string column for dictionary-domain grouping.
func fusedAggStore(b *testing.B) *monet.Store {
	store := monet.NewStore()
	n := 1 << 20
	val := monet.NewBATCap(monet.Void, monet.IntT, n)
	cat := monet.NewBATCap(monet.Void, monet.StrT, n)
	for i := 0; i < n; i++ {
		val.MustInsert(monet.VoidValue(), monet.NewInt(int64(i%1000)))
		cat.MustInsert(monet.VoidValue(), monet.NewStr(fmt.Sprintf("team-%02d", i%64)))
	}
	if err := store.Put("bench/val", val); err != nil {
		b.Fatal(err)
	}
	if err := store.Put("bench/cat", cat); err != nil {
		b.Fatal(err)
	}
	return store
}

// benchFusedSelectAgg1M times the fused select→sum pipeline over the
// same workload as SelectAgg1M: no position slice, no gathered
// intermediate — each morsel feeds its qualifying runs straight into
// the sum, and the store's adaptive paths (cracker, after the warmup
// graduates the column) answer the predicate. One untimed call warms
// the index state, like the access-path benchmarks.
func benchFusedSelectAgg1M(b *testing.B) {
	store := fusedAggStore(b)
	p := store.Pipeline("bench/val", monet.NewInt(100), monet.NewInt(199))
	ctx := context.Background()
	if _, _, err := p.Aggregate(ctx, "bench/val", "sum"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Aggregate(ctx, "bench/val", "sum"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDictGroupAgg1M times the fused dictionary-domain grouped sum:
// a ~80%-selective predicate over 1M int rows feeding a 64-group sum
// keyed on int32 dictionary codes — the string labels decode once per
// distinct group, never per row.
func benchDictGroupAgg1M(b *testing.B) {
	store := fusedAggStore(b)
	p := store.Pipeline("bench/val", monet.NewInt(100), monet.NewInt(899))
	ctx := context.Background()
	if _, _, err := p.GroupAggregate(ctx, "bench/cat", "bench/val", "sum"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.GroupAggregate(ctx, "bench/cat", "bench/val", "sum"); err != nil {
			b.Fatal(err)
		}
	}
}

// accessStore builds a store holding "bench/val", a 1M-row float
// column ascending over [0, 1000) — the clustered layout of
// time-ordered telemetry, where zone-map pruning actually bites. The
// access-path benchmarks select [100, 199.5] from it (~10%
// selectivity, ~90% of morsels prunable). Float tails keep
// Scan/ZoneMap/Crack comparisons apples-to-apples: the scan variant
// needs a NaN row to pin the gate on PathScan, and NaN only exists
// for floats.
func accessStore(b *testing.B, withNaN bool) *monet.Store {
	store := monet.NewStore()
	n := 1 << 20
	bat := monet.NewBATCap(monet.Void, monet.FloatT, n+1)
	for i := 0; i < n; i++ {
		bat.MustInsert(monet.VoidValue(), monet.NewFloat(float64(i)*1000/float64(n)))
	}
	if withNaN {
		// One NaN poisons index structures: the cost gate marks the
		// column unsafe and every select takes the full parallel scan.
		bat.MustInsert(monet.VoidValue(), monet.NewFloat(math.NaN()))
	}
	if err := store.Put("bench/val", bat); err != nil {
		b.Fatal(err)
	}
	return store
}

// benchAccessSelect warms the index state with one untimed select,
// then times SelectPositions over [100, 199.5].
func benchAccessSelect(b *testing.B, store *monet.Store) {
	lo, hi := monet.NewFloat(100), monet.NewFloat(199.5)
	if _, _, err := store.SelectPositions("bench/val", lo, hi); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.SelectPositions("bench/val", lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScanSelect1M is the full morsel-parallel scan the adaptive
// paths are judged against: a NaN row pins the gate on PathScan.
func benchScanSelect1M(b *testing.B) {
	benchAccessSelect(b, accessStore(b, true))
}

// benchZoneMapSelect1M holds the gate on zone-map pruning by raising
// the crack threshold out of reach.
func benchZoneMapSelect1M(b *testing.B) {
	prev := monet.SetCrackThreshold(1 << 30)
	defer monet.SetCrackThreshold(prev)
	store := accessStore(b, false)
	if _, err := store.BuildZoneMap("bench/val"); err != nil {
		b.Fatal(err)
	}
	benchAccessSelect(b, store)
}

// benchCrackSelect1M force-builds the cracker so every timed select
// answers from the incrementally partitioned copy.
func benchCrackSelect1M(b *testing.B) {
	store := accessStore(b, false)
	if _, err := store.Crack("bench/val"); err != nil {
		b.Fatal(err)
	}
	benchAccessSelect(b, store)
}

// benchDictEq1M times a string equality select answered by the
// dictionary: 1M rows over 500 distinct labels, ~0.2% selectivity.
func benchDictEq1M(b *testing.B) {
	store := monet.NewStore()
	n := 1 << 20
	bat := monet.NewBATCap(monet.Void, monet.StrT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(monet.VoidValue(), monet.NewStr(fmt.Sprintf("label-%03d", i%500)))
	}
	if err := store.Put("bench/label", bat); err != nil {
		b.Fatal(err)
	}
	eq := monet.NewStr("label-042")
	if _, _, err := store.SelectPositions("bench/label", eq, eq); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.SelectPositions("bench/label", eq, eq); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBATJoin(b *testing.B) {
	const n = 5000
	left := monet.NewBATCap(monet.OIDT, monet.IntT, n)
	right := monet.NewBATCap(monet.IntT, monet.StrT, n)
	for i := 0; i < n; i++ {
		left.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(int64(i)))
		right.MustInsert(monet.NewInt(int64(i)), monet.NewStr("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBATUselect(b *testing.B) {
	const n = 100000
	bat := monet.NewBATCap(monet.OIDT, monet.IntT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(int64(i%1000)))
	}
	lo, hi := monet.NewInt(100), monet.NewInt(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Uselect(lo, hi)
	}
}

func benchMILExec(b *testing.B) {
	in := mil.NewInterp(monet.NewStore())
	const prog = `VAR b := new(void,int); b.insert(nil, 41); RETURN b.sum + 1;`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Exec(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHMMEvalParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pool := hmm.NewEnginePool(7)
	for _, name := range []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"} {
		m := hmm.NewModel(name, 8, 16)
		m.Randomize(rng)
		if err := pool.Register(m); err != nil {
			b.Fatal(err)
		}
	}
	obs := make([]int, 2000)
	for i := range obs {
		obs[i] = rng.Intn(16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.EvaluateAll(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// servingQuery is the statement the cache benchmarks run: a feature
// threshold over a 1M-sample materialized stream, so every uncached
// execution pays a full 1M-row kernel scan while the result body stays
// a handful of segments.
const servingQuery = `SELECT SEGMENTS FROM v WHERE FEATURE('speed') > 0.5`

// servingServer builds a server over a 1M-sample feature stream,
// attaching a result cache of the given budget (0: no cache).
func servingServer(b *testing.B, cacheBytes int64) *server.Server {
	b.Helper()
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if err := cat.PutVideo(cobra.Video{Name: "v", Duration: 1 << 17, FPS: 8}); err != nil {
		b.Fatal(err)
	}
	// Half the rows qualify, in long alternating blocks: the kernel's
	// range select (even answered from an index) hands back ~512k
	// qualifying positions that the engine must walk into runs, so an
	// uncached execution pays O(n) work per request while the answer
	// itself stays 8 segments.
	n := 1 << 20
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.1
		if (i>>16)%2 == 0 {
			vals[i] = 0.9
		}
	}
	if _, err := cat.AppendFeatureSamples("v", "speed", 8, vals); err != nil {
		b.Fatal(err)
	}
	srv := server.New(cobra.NewPreprocessor(cat), nil)
	if cacheBytes > 0 {
		srv.SetCache(qcache.New(cacheBytes))
	}
	// One untimed run sanity-checks the response shape.
	var out strings.Builder
	srv.Serve(servingQuery, &out)
	if !strings.HasPrefix(out.String(), "OK ") {
		b.Fatalf("serving fixture query failed:\n%s", out.String())
	}
	return srv
}

// benchUncachedQuery1M times the full serving path with no result
// cache attached: every request parses, plans and scans 1M rows.
func benchUncachedQuery1M(b *testing.B) {
	srv := servingServer(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Serve(servingQuery, io.Discard)
	}
}

// benchCachedQuery1M times the same request answered warm: canonical
// key, epoch fingerprint check, and a replay of the stored body.
func benchCachedQuery1M(b *testing.B) {
	srv := servingServer(b, qcache.DefaultMaxBytes)
	// Warm twice: the first execution may bump its own dependency
	// epochs (lazy materialization), stale-marking the entry it stored.
	srv.Serve(servingQuery, io.Discard)
	srv.Serve(servingQuery, io.Discard)
	if st := srv.Cache().Stats(); st.Entries == 0 {
		b.Fatalf("warmup stored nothing: %+v", st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Serve(servingQuery, io.Discard)
	}
	if st := srv.Cache().Stats(); st.Hits < int64(b.N) {
		b.Fatalf("timed loop was not all hits: %+v over %d iterations", st, b.N)
	}
}

// benchCacheMissEvict times the cache's worst case on a small corpus:
// a budget sized for a single entry and a rotating set of distinct
// statements, so every request misses, stores, and evicts the previous
// tenant. Isolates miss-path bookkeeping from kernel scan cost.
func benchCacheMissEvict(b *testing.B) {
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if err := cat.PutVideo(cobra.Video{Name: "v", Duration: 600, FPS: 10}); err != nil {
		b.Fatal(err)
	}
	events := make([]cobra.Event, 0, 200)
	for i := 0; i < 200; i++ {
		events = append(events, cobra.Event{
			Type:       "highlight",
			Interval:   cobra.Interval{Start: float64(i * 3), End: float64(i*3 + 2)},
			Confidence: 0.9,
		})
	}
	if err := cat.PutEvents("v", events); err != nil {
		b.Fatal(err)
	}
	srv := server.New(cobra.NewPreprocessor(cat), nil)
	srv.SetCache(qcache.New(1 << 10))
	stmts := make([]string, 8)
	for i := range stmts {
		stmts[i] = fmt.Sprintf(
			`SELECT SEGMENTS FROM v WHERE EVENT('highlight') LIMIT %d`, 20+i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Serve(stmts[i%len(stmts)], io.Discard)
	}
	if st := srv.Cache().Stats(); st.Hits > 0 && st.Evictions == 0 {
		b.Fatalf("eviction bench degenerated into hits: %+v", st)
	}
}

func benchCOQLQuery(b *testing.B) {
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if err := cat.PutVideo(cobra.Video{Name: "v", Duration: 600, FPS: 10}); err != nil {
		b.Fatal(err)
	}
	events := make([]cobra.Event, 0, 200)
	for i := 0; i < 200; i++ {
		events = append(events, cobra.Event{
			Type:       "highlight",
			Interval:   cobra.Interval{Start: float64(i * 3), End: float64(i*3 + 2)},
			Confidence: 0.9,
		})
	}
	if err := cat.PutEvents("v", events); err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(cobra.NewPreprocessor(cat))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
			b.Fatal(err)
		}
	}
}
