// Command cobra-cli is the interactive shell of the Cobra VDBMS: the
// text replacement for the paper's Java GUI (§5.6, Fig. 12). It
// evaluates COQL queries at the conceptual level and MIL statements at
// the physical level, either against a local snapshot (-db) or a
// remote cobra-server (-connect).
//
// Usage:
//
//	cobra-cli -db ./f1db
//	cobra-cli -connect localhost:4242
//
// Shell commands:
//
//	SELECT/RETRIEVE ...   COQL query
//	EXPLAIN <q>           emit and verify the MIL access plan (no execution)
//	EXPLAIN ANALYZE <q>   run a COQL query; plan with access paths, then span tree
//	mil <statement>       MIL statement against the kernel
//	check <statement>     statically verify a MIL statement (milcheck)
//	trace                 list recent completed query traces
//	trace <id>            one trace's resource attribution and span tree
//	trace export <id> <f> write the trace as Chrome trace-event JSON
//	.videos               list videos
//	.features <video>     list materialized features
//	.plot <video> <feat>  text plot of a feature stream
//	.rule <file> <video>  derive compound events from a rule DSL file
//	.stats                store statistics
//	.help                 usage
//	.quit                 exit
//
// Against a remote server the same inspection goes through the
// TRACEDUMP protocol verb (lines are sent verbatim), and two extra
// shell commands drive standing queries (docs/STREAMING.md):
//
//	subscribe <coql>      register a standing query; prints its ID
//	follow [n]            block and print the next n pushed frames (default 1)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/mil"
	"cobra/internal/milcheck"
	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/query"
	"cobra/internal/rules"
	"cobra/internal/server"
)

func main() {
	db := flag.String("db", "", "snapshot directory to load (empty: fresh small corpus)")
	connect := flag.String("connect", "", "connect to a cobra-server instead of running locally")
	flag.Parse()

	if *connect != "" {
		if err := remoteShell(*connect); err != nil {
			fatal(err)
		}
		return
	}
	if err := localShell(*db); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-cli:", err)
	os.Exit(1)
}

func localShell(db string) error {
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	pre := cobra.NewPreprocessor(cat)

	if db != "" {
		if err := store.LoadSnapshot(db); err != nil {
			return err
		}
		fmt.Printf("loaded %d BATs from %s\n", store.Len(), db)
	} else {
		fmt.Println("no -db given: simulating a small corpus (this keeps dynamic extraction live)")
	}
	// Extraction engines stay registered either way, so queries that
	// need missing metadata trigger dynamic extraction.
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 200
	cfg.TrainDur = 120
	cfg.EMIterations = 3
	corpus := f1.NewCorpus(cfg)
	if db == "" {
		if err := corpus.IngestVideos(cat); err != nil {
			return err
		}
	}
	corpus.RegisterExtractors(pre)

	eng := query.NewEngine(pre)
	interp := mil.NewInterp(store)
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("Cobra VDBMS shell — .help for usage")
	for {
		fmt.Print("cobra> ")
		if !in.Scan() {
			return nil
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return nil
		case line == ".help":
			printHelp()
		case line == ".videos":
			for _, v := range cat.Videos() {
				fmt.Println(" ", v)
			}
		case strings.HasPrefix(line, ".features"):
			video := strings.TrimSpace(strings.TrimPrefix(line, ".features"))
			for _, f := range cat.FeatureNames(video) {
				fmt.Println(" ", f)
			}
		case line == ".stats":
			st := store.Stats()
			fmt.Printf("  %d BATs, %d BUNs\n", st.BATs, st.BUNs)
			for _, prefix := range sortedKeys(st.ByPrefix) {
				fmt.Printf("    %-12s %d\n", prefix, st.ByPrefix[prefix])
			}
		case strings.HasPrefix(line, ".plot "):
			// .plot <video> <feature>: text plot of a feature stream.
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .plot <video> <feature>")
				continue
			}
			f, err := cat.Feature(parts[1], parts[2])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  %s/%s (%d samples at %g Hz)\n", parts[1], parts[2], len(f.Values), f.SampleRate)
			fmt.Println("  " + sparkline(f.Values))
		case strings.HasPrefix(line, ".export "):
			// .export <video> <file>: MPEG-7-style metadata export.
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .export <video> <file>")
				continue
			}
			out, err := cobra.ExportMPEG7(cat, parts[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := os.WriteFile(parts[2], out, 0o644); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  %d bytes written to %s\n", len(out), parts[2])
		case strings.HasPrefix(line, ".rule "):
			// .rule <file> <video>: define compound events from a rule
			// DSL file and materialize them (§5.6).
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .rule <file> <video>")
				continue
			}
			src, err := os.ReadFile(parts[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			rs, err := rules.ParseRules(string(src))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			added, err := cobra.ApplyRules(cat, parts[2], rs)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  %d events derived\n", added)
		case strings.ToLower(line) == "trace" || strings.HasPrefix(strings.ToLower(line), "trace "):
			traceCommand(strings.Fields(line)[1:])
		case strings.HasPrefix(strings.ToLower(line), "mil "):
			v, err := interp.Exec(strings.TrimPrefix(line[4:], " "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(" ", v.String())
			for _, out := range interp.Output() {
				fmt.Println(" ", out)
			}
		case strings.HasPrefix(strings.ToLower(line), "check "):
			// check <mil>: static verification only, nothing executes.
			opts := &milcheck.Options{
				Globals:    map[string]milcheck.VType{},
				Funcs:      milcheck.ExtensionSigs(),
				KnownFuncs: append(interp.BuiltinNames(), interp.Procs()...),
				ResolveBAT: milcheck.StoreResolver(store),
			}
			for _, n := range interp.GlobalNames() {
				opts.Globals[n] = milcheck.Any()
			}
			diags, err := milcheck.CheckSource(strings.TrimSpace(line[6:]), opts)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if len(diags) == 0 {
				fmt.Println("  program OK")
				continue
			}
			for _, d := range diags {
				fmt.Println(" ", d)
			}
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN ANALYZE "):
			// EXPLAIN ANALYZE <query>: the verified plan with access
			// paths, then the executed trace span tree across the
			// conceptual/logical/physical levels.
			stmt := strings.TrimSpace(line[len("EXPLAIN ANALYZE "):])
			ex, res, span, err := eng.ExplainAnalyze(stmt)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
				fmt.Println("  " + l)
			}
			fmt.Printf("  # executed: %d segments\n", len(res))
			for _, l := range strings.Split(strings.TrimRight(span.Render(), "\n"), "\n") {
				fmt.Println("  " + l)
			}
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN "):
			// EXPLAIN <query>: emit and verify the MIL access plan
			// without running the query.
			ex, err := eng.Explain(strings.TrimSpace(line[len("EXPLAIN "):]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
				fmt.Println("  " + l)
			}
		default:
			res, err := eng.Run(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResults(res)
		}
	}
}

// traceCommand inspects the in-process ring of completed query
// traces: `trace` lists recent IDs, `trace <id>` prints one trace's
// resource attribution and span tree, and `trace export <id> <file>`
// writes it as Chrome trace-event JSON (load in about:tracing or
// Perfetto).
func traceCommand(args []string) {
	switch {
	case len(args) == 0:
		ts := obs.DefaultTraces.Recent()
		if len(ts) == 0 {
			fmt.Println("  (no traces yet — run a query first)")
			return
		}
		for _, t := range ts {
			head := fmt.Sprintf("  %s %-8v %s", t.ID, t.Duration.Round(time.Microsecond), t.Query)
			if t.Err != "" {
				head += " [error: " + t.Err + "]"
			}
			fmt.Println(head)
		}
	case args[0] == "export":
		if len(args) != 3 {
			fmt.Println("usage: trace export <id> <file>")
			return
		}
		t, ok := obs.DefaultTraces.Get(args[1])
		if !ok {
			fmt.Printf("error: no trace %q (run `trace` for recent IDs)\n", args[1])
			return
		}
		out, err := obs.ChromeTraceJSON(t.Root)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := os.WriteFile(args[2], out, 0o644); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("  %d bytes written to %s\n", len(out), args[2])
	case len(args) == 1:
		t, ok := obs.DefaultTraces.Get(args[0])
		if !ok {
			fmt.Printf("error: no trace %q (run `trace` for recent IDs)\n", args[0])
			return
		}
		fmt.Printf("  # trace %s %s %v\n", t.ID, t.Start.Format(time.RFC3339), t.Duration)
		fmt.Printf("  # query %s\n", t.Query)
		fmt.Printf("  # %s\n", t.Res.String())
		for _, l := range strings.Split(strings.TrimRight(t.Root.Render(), "\n"), "\n") {
			fmt.Println("  " + l)
		}
	default:
		fmt.Println("usage: trace [<id> | export <id> <file>]")
	}
}

func printResults(res []query.Result) {
	if len(res) == 0 {
		fmt.Println("  (no segments)")
		return
	}
	for _, r := range res {
		attrs := ""
		for k, v := range r.Attrs {
			attrs += fmt.Sprintf(" %s=%s", k, v)
		}
		fmt.Printf("  [%7.1fs - %7.1fs] conf=%.2f%s\n", r.Interval.Start, r.Interval.End, r.Confidence, attrs)
	}
}

func printHelp() {
	fmt.Print(`  SELECT SEGMENTS FROM <video> WHERE <cond> [ORDER BY START|CONFIDENCE [DESC]] [LIMIT n]
    cond: EVENT('type'[, attr='v']) | TEXT CONTAINS 'WORD' |
          FEATURE('name') > 0.5 | OBJECT('NAME') | NOT cond |
          cond AND/OR cond | cond BEFORE/AFTER/DURING/OVERLAPS cond |
          cond WITHIN <n> OF cond
  EXPLAIN <query>           emit and statically verify the MIL access plan
  EXPLAIN ANALYZE <query>   run a COQL query: plan with access paths, then its trace span tree
  mil <stmt>        MIL against the kernel, e.g. mil RETURN bat("cobra/videos").count;
  check <stmt>      statically verify MIL without running it (milcheck)
  trace             list recent completed query traces (newest first)
  trace <id>        one trace's resource attribution and span tree
  trace export <id> <file>  write the trace as Chrome trace-event JSON
  remote mode (-addr) also accepts the serving verbs, sent verbatim:
    CACHESTATS              result-cache and plan-cache counters
    GATES [SET <flag> <v>]  list or flip feature gates (on|off|NN%)
    AUTH <tenant> [token]   authenticate this connection
  .videos           list videos
  .features <v>     list materialized features of a video
  .plot <v> <feat>  text plot of a materialized feature stream
  .rule <file> <v>  derive compound events from a rule DSL file
  .export <v> <f>   write MPEG-7-style metadata XML to a file
  .quit             exit
`)
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sparkline renders a [0,1] series as a coarse text plot.
func sparkline(series []float64) string {
	const cols = 64
	glyphs := []rune(" .:-=+*#%@")
	if len(series) == 0 {
		return ""
	}
	out := make([]rune, cols)
	for c := 0; c < cols; c++ {
		lo := c * len(series) / cols
		hi := (c + 1) * len(series) / cols
		if hi <= lo {
			hi = lo + 1
		}
		m := 0.0
		for i := lo; i < hi && i < len(series); i++ {
			if series[i] > m {
				m = series[i]
			}
		}
		if m > 1 {
			m = 1
		}
		out[c] = glyphs[int(m*float64(len(glyphs)-1))]
	}
	return string(out)
}

func remoteShell(addr string) error {
	cl, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("connected to %s — protocol lines are sent verbatim (.quit to exit)\n", addr)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("cobra> ")
		if !in.Scan() {
			return nil
		}
		line := strings.TrimSpace(in.Text())
		lower := strings.ToLower(line)
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return nil
		case strings.HasPrefix(lower, "subscribe "):
			// subscribe <coql>: standing query; pushed frames arrive
			// asynchronously and are printed by `follow`.
			id, err := cl.Subscribe(strings.TrimSpace(line[len("subscribe "):]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  subscribed as %s — `follow <n>` prints pushed frames\n", id)
		case lower == "follow" || strings.HasPrefix(lower, "follow "):
			n := 1
			if parts := strings.Fields(line); len(parts) > 1 {
				v, err := strconv.Atoi(parts[1])
				if err != nil || v <= 0 {
					fmt.Println("usage: follow [n]")
					continue
				}
				n = v
			}
			for i := 0; i < n; i++ {
				ev, err := cl.NextEvent(30 * time.Second)
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				printPushEvent(ev)
			}
		default:
			out, err := cl.Do(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range out {
				fmt.Println(" ", l)
			}
		}
	}
}

// printPushEvent renders one asynchronous notification frame: the
// standing query's full result set at the frame's watermark.
func printPushEvent(ev server.PushEvent) {
	fmt.Printf("  EVENT %s seq=%d watermark=%.1fs (%d segments)\n",
		ev.SubID, ev.Seq, ev.Watermark, len(ev.Lines))
	for _, l := range ev.Lines {
		fmt.Println("   ", l)
	}
}
