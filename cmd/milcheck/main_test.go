package main

import (
	"strings"
	"testing"
)

func TestExamplesCorpusIsClean(t *testing.T) {
	files, err := collect([]string{"../../examples"})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .mil files under examples/")
	}
	var out strings.Builder
	errs, warns := lintFiles(files, &out)
	if errs != 0 || warns != 0 {
		t.Errorf("examples corpus not clean (%d errors, %d warnings):\n%s", errs, warns, out.String())
	}
}

func TestSeededBadFileFails(t *testing.T) {
	var out strings.Builder
	errs, _ := lintFiles([]string{"testdata/bad.mil"}, &out)
	if errs == 0 {
		t.Fatalf("bad.mil passed:\n%s", out.String())
	}
	body := out.String()
	// Diagnostics carry the file and a position, and cover the type
	// mismatch, the PARALLEL write-write conflict and the unbound var.
	for _, want := range []string{
		"testdata/bad.mil:4:",
		"parallel-write-write",
		"unbound-var",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

func TestCollectRejectsMissingPath(t *testing.T) {
	if _, err := collect([]string{"testdata/nosuch.mil"}); err == nil {
		t.Fatal("missing path accepted")
	}
}
