// Command milcheck statically verifies MIL programs without running
// them: symbol resolution, BAT column type inference through every
// kernel operator, dead code, and PARALLEL-block safety (the Fig. 4
// pattern). It is the batch face of the same analyzer behind the
// server's CHECK command and the engine's EXPLAIN output.
//
// Usage:
//
//	milcheck [-strict] <file.mil | dir> ...
//
// Directories are walked recursively for .mil files. Diagnostics print
// as file:line:col lines. The exit status is 1 when any file has
// errors (with -strict, warnings too), 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"cobra/internal/milcheck"
)

func main() {
	strict := flag.Bool("strict", false, "treat warnings as failures")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: milcheck [-strict] <file.mil | dir> ...")
		os.Exit(2)
	}
	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "milcheck:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "milcheck: no .mil files found")
		os.Exit(2)
	}
	errs, warns := lintFiles(files, os.Stdout)
	if errs > 0 || (*strict && warns > 0) {
		os.Exit(1)
	}
}

// collect expands the argument list into .mil files, walking
// directories recursively.
func collect(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".mil") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// lintFiles checks each file and prints its diagnostics, returning the
// total error and warning counts. Files check standalone: the
// extension operations carry their signatures, and bat() resolves only
// names the program itself registers.
func lintFiles(files []string, w io.Writer) (errs, warns int) {
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", file, err)
			errs++
			continue
		}
		diags, err := milcheck.CheckSource(string(src), &milcheck.Options{
			Funcs: milcheck.ExtensionSigs(),
		})
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", file, err)
			errs++
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s:%s\n", file, d)
			if d.Severity == milcheck.Error {
				errs++
			} else {
				warns++
			}
		}
	}
	return errs, warns
}
