// Command doclint fails when exported identifiers lack godoc
// comments; it is the documentation gate run in CI alongside gofmt and
// vet, equivalent to revive's exported-comment rule but dependency
// free.
//
// Usage:
//
//	go run ./cmd/doclint ./internal/monet ./internal/wal ...
//
// For every named package directory it checks that the package has a
// package comment and that each exported top-level declaration — func,
// type, method on an exported type, and var/const (grouped
// declarations may share one doc comment) — carries a doc comment.
// Test files are skipped. Violations print as file:line: messages and
// the exit status is 1 if any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		dir = strings.TrimPrefix(dir, "./")
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir checks one package directory and returns the violation count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += lintFile(fset, name, f)
		}
	}
	return bad
}

// lintFile checks one parsed file and returns the violation count.
func lintFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: exported %s is undocumented\n", fset.Position(pos), what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			kind := "function " + d.Name.Name
			if d.Recv != nil {
				kind = "method " + d.Name.Name
			}
			report(d.Pos(), kind)
		case *ast.GenDecl:
			// A doc comment on the group covers every spec in it.
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, id := range sp.Names {
						if id.IsExported() {
							report(id.Pos(), kindOf(d.Tok)+" "+id.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// kindOf spells a GenDecl token for messages.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
