// Command doclint fails when exported identifiers lack godoc
// comments; it is the documentation gate run in CI alongside gofmt and
// vet, equivalent to revive's exported-comment rule but dependency
// free.
//
// Usage:
//
//	go run ./cmd/doclint [-analyzers dir:catalogue.md] ./internal/monet ./internal/wal ...
//
// For every named package directory it checks that the package has a
// package comment and that each exported top-level declaration — func,
// type, method on an exported type, and var/const (grouped
// declarations may share one doc comment) — carries a doc comment.
// Test files are skipped. Violations print as file:line: messages and
// the exit status is 1 if any were found.
//
// -analyzers dir:catalogue.md additionally cross-checks the cobravet
// suite against its prose catalogue: every vet.Analyzer declared under
// dir (a composite literal with string Name and Code fields) must have
// a "### CVnnn `name`" heading in the markdown file, and every such
// heading must correspond to a declared analyzer — so the catalogue
// can neither lag behind a new analyzer nor describe a removed one.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strings"
)

func main() {
	analyzersSpec := flag.String("analyzers", "",
		"dir:markdown — cross-check every vet.Analyzer under dir against CVnnn headings in markdown")
	flag.Parse()
	if flag.NArg() == 0 && *analyzersSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: doclint [-analyzers dir:catalogue.md] <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		dir = strings.TrimPrefix(dir, "./")
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
	if *analyzersSpec != "" {
		dir, md, ok := strings.Cut(*analyzersSpec, ":")
		if !ok {
			fmt.Fprintln(os.Stderr, "doclint: -analyzers wants dir:catalogue.md")
			os.Exit(2)
		}
		if n := lintAnalyzerCatalogue(dir, md); n > 0 {
			fmt.Fprintf(os.Stderr, "doclint: %d analyzer-catalogue mismatch(es)\n", n)
			os.Exit(1)
		}
	}
}

// catalogueHeading matches one analyzer's section heading in the
// markdown catalogue.
var catalogueHeading = regexp.MustCompile("(?m)^### (CV[0-9]+) `([a-z]+)`")

// lintAnalyzerCatalogue cross-checks declared analyzers against the
// markdown catalogue in both directions and returns the mismatch
// count.
func lintAnalyzerCatalogue(dir, md string) int {
	declared, err := declaredAnalyzers(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	if len(declared) == 0 {
		fmt.Printf("%s: no vet.Analyzer declarations found\n", dir)
		return 1
	}
	data, err := os.ReadFile(md)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	documented := map[string]string{}
	for _, m := range catalogueHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = m[2]
	}
	bad := 0
	for code, name := range declared {
		if got, ok := documented[code]; !ok {
			fmt.Printf("%s: analyzer %s %q has no \"### %s `%s`\" heading in %s\n", dir, code, name, code, name, md)
			bad++
		} else if got != name {
			fmt.Printf("%s: heading for %s names %q but the analyzer is %q\n", md, code, got, name)
			bad++
		}
	}
	for code, name := range documented {
		if _, ok := declared[code]; !ok {
			fmt.Printf("%s: heading %s `%s` documents an analyzer not declared in %s\n", md, code, name, dir)
			bad++
		}
	}
	return bad
}

// declaredAnalyzers scans dir's non-test files for composite literals
// carrying string Name and Code fields — the shape of a vet.Analyzer
// declaration — and returns code → name.
func declaredAnalyzers(dir string) (map[string]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				var name, code string
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					lit, ok := kv.Value.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val := strings.Trim(lit.Value, `"`)
					switch key.Name {
					case "Name":
						name = val
					case "Code":
						code = val
					}
				}
				if name != "" && strings.HasPrefix(code, "CV") {
					out[code] = name
				}
				return true
			})
		}
	}
	return out, nil
}

// lintDir checks one package directory and returns the violation count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += lintFile(fset, name, f)
		}
	}
	return bad
}

// lintFile checks one parsed file and returns the violation count.
func lintFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: exported %s is undocumented\n", fset.Position(pos), what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			kind := "function " + d.Name.Name
			if d.Recv != nil {
				kind = "method " + d.Name.Name
			}
			report(d.Pos(), kind)
		case *ast.GenDecl:
			// A doc comment on the group covers every spec in it.
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, id := range sp.Names {
						if id.IsExported() {
							report(id.Pos(), kindOf(d.Tok)+" "+id.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// kindOf spells a GenDecl token for messages.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
