// Command cobra-server serves the Cobra VDBMS over TCP: COQL queries,
// MIL statements and remote HMM evaluation (the paper's Fig. 3
// distributed-engine setup, collapsed into one process with an engine
// pool).
//
// Usage:
//
//	cobra-server -addr :4242 [-db ./f1db | -data-dir ./cobra-data]
//	             [-wal-sync always|interval|none] [-checkpoint-every 5m]
//	             [-metrics-addr :6060] [-slow-query-ms 250] [-threads 8]
//	             [-qcache-bytes 67108864] [-max-inflight 32 -max-queue 64]
//	             [-rate 100 -burst 20] [-auth-token secret]
//	             [-feed live-gp [-feed-interval 200ms] [-feed-step 2]
//	              [-feed-dur 120] [-feed-seed 42]]
//
// With -db, a plain snapshot directory is loaded read-only and the
// process is main-memory only, as in the paper. With -data-dir, the
// durability subsystem takes over: the directory is recovered on start
// (latest checkpoint snapshot plus write-ahead-log replay), every
// store mutation is WAL-logged under the -wal-sync policy, checkpoints
// run every -checkpoint-every (and on demand via the CHECKPOINT
// protocol command), and a final checkpoint runs on clean shutdown.
// Kill the process at any moment and restart it with the same
// -data-dir: it recovers every acknowledged write.
//
// With -metrics-addr set, the process additionally serves /metrics
// (Prometheus text exposition; telemetry JSON under
// Accept: application/json or at /debug/vars) and /debug/pprof over
// HTTP. -slow-query-ms enables the slow-query log, readable over the
// protocol via SLOWLOG; completed query traces are readable via
// TRACEDUMP.
//
// -threads sets the width of the shared kernel worker pool that
// morsel-parallel BAT operators, MIL PARALLEL blocks and the HMM/DBN
// engines schedule onto (0: GOMAXPROCS). The MIL threadcnt() setting
// adjusts the same pool at runtime.
//
// Serving hardening: -qcache-bytes sizes the semantic result cache
// (default 64 MiB; 0 disables it) that answers repeated COQL queries
// from memory until a dependency BAT mutates. -max-inflight bounds
// concurrently executing heavy requests; arrivals beyond
// -max-inflight + -max-queue are shed with a BUSY response. -rate and
// -burst add per-tenant token-bucket rate limits. -auth-token
// requires clients to AUTH before heavy verbs. All of these can be
// inspected and toggled live over the protocol: CACHESTATS, GATES,
// GATES SET <flag> <on|off|NN%>. See docs/SERVING.md.
//
// Streaming: SUBSCRIBE/UNSUBSCRIBE standing queries are always
// served. With -feed <video>, the process additionally runs a live
// ingest loop — a simulated race broadcast is appended into the named
// video clip by clip (-feed-step broadcast seconds every
// -feed-interval of wall clock), and every append advances the
// standing queries, pushing changed result sets to subscribers. See
// docs/STREAMING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"cobra/internal/admit"
	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/hmm"
	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/qcache"
	"cobra/internal/query"
	"cobra/internal/server"
	"cobra/internal/stream"
	"cobra/internal/synth"
	"cobra/internal/wal"
)

func main() {
	addr := flag.String("addr", ":4242", "listen address")
	db := flag.String("db", "", "snapshot directory to load (read-only, no durability)")
	dataDir := flag.String("data-dir", "", "durable data directory: recover on start, WAL every mutation")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval or none")
	checkpointEvery := flag.Duration("checkpoint-every", 5*time.Minute, "background checkpoint period with -data-dir (0: manual CHECKPOINT only)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty: disabled)")
	slowMs := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds (0: disabled)")
	threads := flag.Int("threads", 0, "kernel worker-pool width for parallel operators (0: GOMAXPROCS)")
	feed := flag.String("feed", "", "ingest a simulated live race into this video name (empty: no live feed)")
	feedInterval := flag.Duration("feed-interval", 200*time.Millisecond, "wall-clock pause between live ingest steps")
	feedStep := flag.Float64("feed-step", 2, "broadcast seconds aired per ingest step")
	feedDur := flag.Float64("feed-dur", 120, "simulated race duration in seconds for -feed")
	feedSeed := flag.Int64("feed-seed", 42, "simulation seed for -feed")
	qcacheBytes := flag.Int64("qcache-bytes", qcache.DefaultMaxBytes, "semantic result cache budget in bytes (0: cache disabled)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing heavy requests (0: unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max heavy requests queued beyond -max-inflight before shedding BUSY")
	rate := flag.Float64("rate", 0, "per-tenant heavy requests per second (0: unlimited)")
	burst := flag.Int("burst", 0, "per-tenant token-bucket burst for -rate")
	authToken := flag.String("auth-token", "", "require AUTH <tenant> <token> before heavy verbs (empty: open)")
	flag.Parse()

	if *db != "" && *dataDir != "" {
		fatal(fmt.Errorf("-db and -data-dir are mutually exclusive"))
	}
	if *threads > 0 {
		monet.SetDefaultPoolWorkers(*threads)
	}
	if *slowMs > 0 {
		obs.DefaultSlowLog.SetThreshold(time.Duration(*slowMs) * time.Millisecond)
	}
	if *metricsAddr != "" {
		maddr, _, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof)\n", maddr)
	}

	store := monet.NewStore()
	cat := cobra.NewCatalog(store)

	var mgr *wal.Manager
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal(err)
		}
		mgr, err = wal.Open(*dataDir, store, wal.Options{
			Sync:            policy,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			fatal(err)
		}
		r := mgr.Recovery
		fmt.Printf("recovered %s: %d BATs from snapshot, %d WAL records replayed in %v",
			*dataDir, r.SnapshotBATs, r.Replayed, r.Elapsed.Round(time.Millisecond))
		if r.Torn {
			fmt.Print(" (torn tail repaired)")
		}
		fmt.Println()
	}
	if *db != "" {
		if err := store.LoadSnapshot(*db); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d BATs from %s\n", store.Len(), *db)
	}

	pre := cobra.NewPreprocessor(cat)
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 200
	cfg.TrainDur = 120
	cfg.EMIterations = 3
	corpus := f1.NewCorpus(cfg)
	if *db == "" && store.Len() == 0 {
		// Fresh start: simulate and ingest the broadcasts. With
		// -data-dir the ingest itself is WAL-logged, so a crash during
		// it recovers the finished prefix.
		if err := corpus.IngestVideos(cat); err != nil {
			fatal(err)
		}
	}
	corpus.RegisterExtractors(pre)

	// Six stroke models for the HMM endpoint, as in Fig. 4.
	pool := hmm.NewEnginePool(7)
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"} {
		m := hmm.NewModel(name, 8, 16)
		m.Randomize(rng)
		if err := pool.Register(m); err != nil {
			fatal(err)
		}
	}

	srv := server.New(pre, pool)
	if mgr != nil {
		srv.SetCheckpointer(mgr)
	}
	if *qcacheBytes > 0 {
		srv.SetCache(qcache.New(*qcacheBytes))
	}
	if *maxInflight > 0 || *rate > 0 {
		srv.SetAdmission(admit.New(admit.Config{
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			Rate:        *rate,
			Burst:       *burst,
		}))
	}
	if *authToken != "" {
		srv.SetAuthToken(*authToken)
	}
	subs := stream.NewManager(query.NewEngine(pre))
	srv.SetStream(subs)

	// The live feed: air the simulated race into the catalog step by
	// step and advance the standing queries after every append.
	stopFeed := make(chan struct{})
	feedDone := make(chan struct{})
	if *feed != "" {
		race := synth.GenerateRace(synth.GermanGP, *feedDur, *feedSeed)
		ing, err := f1.NewLiveIngestor(cat, *feed, race, *feedSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("live feed: airing %.0fs of %s every %v in %g s steps\n",
			*feedDur, *feed, *feedInterval, *feedStep)
		go func() {
			defer close(feedDone)
			tick := time.NewTicker(*feedInterval)
			defer tick.Stop()
			for !ing.Done() {
				select {
				case <-stopFeed:
					return
				case <-tick.C:
				}
				w, err := ing.Step(*feedStep)
				if err != nil {
					fmt.Fprintf(os.Stderr, "cobra-server: live feed: %v\n", err)
					return
				}
				subs.Advance(context.Background())
				if ing.Done() {
					fmt.Printf("live feed: %s fully aired at %.1fs\n", *feed, w)
				}
			}
		}()
	} else {
		close(feedDone)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cobra-server listening on %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopFeed)
	<-feedDone
	srv.Close()
	if mgr != nil {
		// Final checkpoint: the next start recovers without replay.
		if err := mgr.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-server:", err)
	os.Exit(1)
}
