// Command cobra-server serves the Cobra VDBMS over TCP: COQL queries,
// MIL statements and remote HMM evaluation (the paper's Fig. 3
// distributed-engine setup, collapsed into one process with an engine
// pool).
//
// Usage:
//
//	cobra-server -addr :4242 [-db ./f1db] [-metrics-addr :6060] [-slow-query-ms 250]
//
// With -metrics-addr set, the process additionally serves /metrics
// (telemetry JSON) and /debug/pprof over HTTP. -slow-query-ms enables
// the slow-query log, readable over the protocol via SLOWLOG.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/hmm"
	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/server"
)

func main() {
	addr := flag.String("addr", ":4242", "listen address")
	db := flag.String("db", "", "snapshot directory to load")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty: disabled)")
	slowMs := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds (0: disabled)")
	flag.Parse()

	if *slowMs > 0 {
		obs.DefaultSlowLog.SetThreshold(time.Duration(*slowMs) * time.Millisecond)
	}
	if *metricsAddr != "" {
		maddr, _, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof)\n", maddr)
	}

	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	if *db != "" {
		if err := store.LoadSnapshot(*db); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d BATs from %s\n", store.Len(), *db)
	}
	pre := cobra.NewPreprocessor(cat)
	cfg := f1.DefaultExpConfig()
	cfg.RaceDur = 200
	cfg.TrainDur = 120
	cfg.EMIterations = 3
	corpus := f1.NewCorpus(cfg)
	if *db == "" {
		if err := corpus.IngestVideos(cat); err != nil {
			fatal(err)
		}
	}
	corpus.RegisterExtractors(pre)

	// Six stroke models for the HMM endpoint, as in Fig. 4.
	pool := hmm.NewEnginePool(7)
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"} {
		m := hmm.NewModel(name, 8, 16)
		m.Randomize(rng)
		if err := pool.Register(m); err != nil {
			fatal(err)
		}
	}

	srv := server.New(pre, pool)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cobra-server listening on %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-server:", err)
	os.Exit(1)
}
