// Package bench is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation (run them with
// `go test -bench=. -benchmem .`), plus kernel and engine
// micro-benchmarks. The experiment benchmarks run at a reduced race
// scale so the full suite stays in the minutes range; cmd/cobra-bench
// runs the same experiments at the default scale and prints the
// paper-vs-measured tables.
package bench

import (
	"math/rand"
	"sync"
	"testing"

	"cobra/internal/dbn"
	"cobra/internal/dsp"
	"cobra/internal/f1"
	"cobra/internal/hmm"
	"cobra/internal/monet"
	"cobra/internal/synth"
)

// lab is shared across experiment benchmarks: extraction and training
// caches make successive benchmarks cheap.
var (
	labOnce sync.Once
	lab     *f1.Lab
)

func sharedLab() *f1.Lab {
	labOnce.Do(func() {
		cfg := f1.DefaultExpConfig()
		cfg.RaceDur = 200
		cfg.TrainDur = 120
		cfg.EMIterations = 4
		lab = f1.NewLab(cfg)
	})
	return lab
}

// BenchmarkTable1 regenerates Table 1: three static BN structures vs
// the fully parameterized DBN on emphasized-speech detection.
func BenchmarkTable1(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2: audio DBN generalization to the
// Belgian and USA GP.
func BenchmarkTable2(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the audio-visual DBN on the
// German GP with sub-event attribution.
func BenchmarkTable3(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the passing sub-network
// ablation on the Belgian and USA GP.
func BenchmarkTable4(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: BN vs DBN output smoothness.
func BenchmarkFig9(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		r, err := l.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if r.DBNRough >= r.BNRough {
			b.Fatalf("DBN roughness %v not below BN %v", r.DBNRough, r.BNRough)
		}
	}
}

// BenchmarkTemporalDeps regenerates the temporal-dependency study.
func BenchmarkTemporalDeps(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.TemporalDeps(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClustering regenerates the Boyen-Koller clustering
// experiment.
func BenchmarkClustering(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.Clustering(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShotDetection regenerates the §5.3 shot-detection accuracy
// check.
func BenchmarkShotDetection(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.ShotAccuracy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeywordModels regenerates the acoustic-model comparison of
// §5.2.
func BenchmarkKeywordModels(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		r, err := l.KeywordModels()
		if err != nil {
			b.Fatal(err)
		}
		if r.TVNewsRecall <= r.CleanRecall {
			b.Fatalf("tvnews recall %v not above clean %v", r.TVNewsRecall, r.CleanRecall)
		}
	}
}

// BenchmarkAudioVsAV regenerates the §6 coverage comparison.
func BenchmarkAudioVsAV(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.AudioVsAV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelHMM measures Fig. 3/4: serial vs parallel
// evaluation of six HMMs.
func BenchmarkParallelHMM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mkPool := func(threads int) *hmm.EnginePool {
		pool := hmm.NewEnginePool(threads)
		for _, name := range []string{"Service", "Forehand", "Smash", "Backhand", "VolleyBackhand", "VolleyForehand"} {
			m := hmm.NewModel(name, 12, 32)
			m.Randomize(rng)
			if err := pool.Register(m); err != nil {
				b.Fatal(err)
			}
		}
		return pool
	}
	obs := make([]int, 5000)
	for i := range obs {
		obs[i] = rng.Intn(32)
	}
	b.Run("serial", func(b *testing.B) {
		pool := mkPool(1)
		for i := 0; i < b.N; i++ {
			if _, err := pool.EvaluateAll(obs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threadcnt7", func(b *testing.B) {
		pool := mkPool(7)
		for i := 0; i < b.N; i++ {
			if _, err := pool.EvaluateAll(obs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFeatureExtraction measures the full §5.2-5.4 pipeline over
// one minute of simulated broadcast.
func BenchmarkFeatureExtraction(b *testing.B) {
	race := synth.GenerateRace(synth.GermanGP, 60, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f1.Extract(race, f1.Options{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBNFilter measures Boyen-Koller filtering throughput on the
// audio-visual network (S = 32).
func BenchmarkDBNFilter(b *testing.B) {
	d, err := f1.NewAVDBN(true)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	obs := make([][]int, 3000)
	for i := range obs {
		row := make([]int, 9)
		for k := range row {
			row[k] = rng.Intn(3)
		}
		obs[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Filter(obs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBNLearnEM measures one EM iteration over a training
// segment set.
func BenchmarkDBNLearnEM(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	obs := make([][]int, 500)
	for i := range obs {
		row := make([]int, 10)
		for k := range row {
			row[k] = rng.Intn(3)
		}
		obs[i] = row
	}
	seqs := [][][]int{obs[:250], obs[250:]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := f1.NewAudioDBN(f1.FullyParameterized, f1.TemporalFig8)
		if err != nil {
			b.Fatal(err)
		}
		cfg := dbn.DefaultEMConfig()
		cfg.MaxIterations = 1
		if _, err := d.LearnEM(seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel micro-benchmarks.

func benchBAT(n int) *monet.BAT {
	b := monet.NewBATCap(monet.OIDT, monet.IntT, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		b.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(rng.Int63n(1000)))
	}
	return b
}

// BenchmarkBATSelect measures range selection over 100k BUNs.
func BenchmarkBATSelect(b *testing.B) {
	bat := benchBAT(100_000)
	lo, hi := monet.NewInt(100), monet.NewInt(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Select(lo, hi)
	}
}

// BenchmarkBATJoin measures a hash equi-join of 10k x 10k BATs.
func BenchmarkBATJoin(b *testing.B) {
	left := monet.NewBATCap(monet.OIDT, monet.OIDT, 10_000)
	for i := 0; i < 10_000; i++ {
		left.MustInsert(monet.NewOID(monet.OID(i)), monet.NewOID(monet.OID(i%1000)))
	}
	right := benchBAT(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBATGroupSum measures grouped aggregation over 100k BUNs.
func BenchmarkBATGroupSum(b *testing.B) {
	bat := monet.NewBATCap(monet.IntT, monet.IntT, 100_000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100_000; i++ {
		bat.MustInsert(monet.NewInt(rng.Int63n(64)), monet.NewInt(rng.Int63n(100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.GroupSum(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT measures the 512-point FFT used by the audio frontend.
func BenchmarkFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	re := make([]float64, 512)
	im := make([]float64, 512)
	for i := range re {
		re[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copyRe := append([]float64(nil), re...)
		copyIm := append([]float64(nil), im...)
		dsp.FFT(copyRe, copyIm)
	}
}

// BenchmarkHMMLogLikelihood measures forward-algorithm throughput.
func BenchmarkHMMLogLikelihood(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := hmm.NewModel("bench", 12, 32)
	m.Randomize(rng)
	obs := make([]int, 2000)
	for i := range obs {
		obs[i] = rng.Intn(32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.LogLikelihood(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantizationAblation regenerates the evidence-granularity
// ablation (DESIGN.md §5.2).
func BenchmarkQuantizationAblation(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		if _, err := l.QuantizationAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnchorAblation regenerates the anchored-EM ablation
// (DESIGN.md §5: domain-knowledge anchoring).
func BenchmarkAnchorAblation(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		rows, err := l.AnchorAblation()
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Recall < rows[1].Recall-0.05 {
			b.Fatalf("anchored recall %v below plain %v", rows[0].Recall, rows[1].Recall)
		}
	}
}
