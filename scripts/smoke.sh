#!/usr/bin/env bash
# Observability + serving + streaming smoke test: boot a real
# cobra-server with the metrics endpoint on and a live simulated race
# feed, drive one COQL query through the wire protocol, prove the
# semantic result cache cycles MISS -> HIT -> epoch-invalidate against
# live ingestion (via CACHESTATS and /metrics), SUBSCRIBE a standing
# query and assert at least one pushed EVENT frame arrives, and check
# the monitoring surfaces are well-formed — /metrics in both content
# negotiations (Prometheus text by default, JSON under
# Accept: application/json), a TRACEDUMP span tree covering the
# query, and a stream.eval trace covering the standing query's
# re-evaluation. Run from the repository root; CI runs it after the
# build.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:14242
MADDR=127.0.0.1:16060
TMP=$(mktemp -d)
BIN="$TMP/bin"
mkdir -p "$BIN"

cleanup() {
  [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "smoke: building"
go build -o "$BIN/cobra-server" ./cmd/cobra-server
go build -o "$BIN/cobra-cli" ./cmd/cobra-cli

echo "smoke: starting cobra-server on $ADDR (metrics on $MADDR, live feed)"
"$BIN/cobra-server" -addr "$ADDR" -metrics-addr "$MADDR" -slow-query-ms 0 \
  -feed live-gp -feed-dur 600 -feed-interval 250ms -feed-step 2 \
  >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# The fresh server simulates and ingests its corpus before listening;
# poll until the protocol port accepts a PING round trip (the CLI
# exits non-zero while the listener is down).
ok=""
for _ in $(seq 1 120); do
  if printf 'PING\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" >/dev/null 2>&1; then
    ok=1
    break
  fi
  sleep 1
done
if [ -z "$ok" ]; then
  echo "smoke: FAIL server never answered PING" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi

echo "smoke: running a query"
printf "SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight')\n.quit\n" \
  | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/query.out"
# Result lines are "start end confidence [attrs]".
grep -qE '^ *[0-9]+\.[0-9] +[0-9]+\.[0-9] +[0-9]\.[0-9]{3}' "$TMP/query.out" || {
  echo "smoke: FAIL query returned no segments" >&2
  cat "$TMP/query.out" >&2
  exit 1
}

# cachestat <name>: one counter out of a CACHESTATS response. The
# shell's "cobra> " prompt shares a line with the first stat, so match
# the key at any field position rather than anchoring on column one.
cachestat() {
  printf 'CACHESTATS\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" \
    | awk -v k="$1" '{ for (i = 1; i < NF; i++) if ($i == k) print $(i + 1) }'
}

echo "smoke: checking result cache MISS -> HIT"
CQ="SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight')"
# Prime once: a first execution can trigger lazy extraction that bumps
# its own dependency epochs, stale-marking the entry it just stored.
# german-gp is static (the feed airs into live-gp), so after priming
# its epochs hold and MISS -> HIT is deterministic.
printf "%s\n.quit\n" "$CQ" | "$BIN/cobra-cli" -connect "$ADDR" >/dev/null
misses0=$(cachestat qcache.misses)
hits0=$(cachestat qcache.hits)
[ "$misses0" -ge 1 ] || {
  echo "smoke: FAIL no cache misses recorded after cold queries" >&2
  exit 1
}
printf "%s\n.quit\n" "$CQ" | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/cached.out"
hits1=$(cachestat qcache.hits)
[ "$hits1" -gt "$hits0" ] || {
  echo "smoke: FAIL repeated query was not a cache hit (hits $hits0 -> $hits1)" >&2
  printf 'CACHESTATS\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" >&2
  exit 1
}
# The cached response is still a real result set.
grep -qE '^ *[0-9]+\.[0-9] +[0-9]+\.[0-9] +[0-9]\.[0-9]{3}' "$TMP/cached.out" || {
  echo "smoke: FAIL cache hit returned no segments" >&2
  cat "$TMP/cached.out" >&2
  exit 1
}

echo "smoke: checking epoch invalidation against the live feed"
LQ="SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')"
printf "%s\n.quit\n" "$LQ" | "$BIN/cobra-cli" -connect "$ADDR" >/dev/null
inval0=$(cachestat qcache.invalidations)
# The feed appends into live-gp every 250ms; after a second the
# cached entry's dependency epochs have certainly moved.
sleep 1
printf "%s\n.quit\n" "$LQ" | "$BIN/cobra-cli" -connect "$ADDR" >/dev/null
inval1=$(cachestat qcache.invalidations)
[ "$inval1" -gt "$inval0" ] || {
  echo "smoke: FAIL live-feed append did not invalidate the cached entry (invalidations $inval0 -> $inval1)" >&2
  printf 'CACHESTATS\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" >&2
  exit 1
}

echo "smoke: checking TRACEDUMP"
printf 'TRACEDUMP\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/traces.out"
# The live feed interleaves stream.eval traces into the ring; anchor on
# the one-shot query's own listing line.
TRACE_ID=$(grep "german-gp" "$TMP/traces.out" | grep -oE 't[0-9a-f]{6,}' | head -1)
if [ -z "$TRACE_ID" ]; then
  echo "smoke: FAIL no trace IDs in TRACEDUMP" >&2
  cat "$TMP/traces.out" >&2
  exit 1
fi
printf 'TRACEDUMP %s\n.quit\n' "$TRACE_ID" | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/trace.out"
for want in "coql.query" "rows_scanned=" "level=conceptual"; do
  grep -q "$want" "$TMP/trace.out" || {
    echo "smoke: FAIL trace $TRACE_ID missing $want" >&2
    cat "$TMP/trace.out" >&2
    exit 1
  }
done
printf 'TRACEDUMP %s CHROME\n.quit\n' "$TRACE_ID" | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/chrome.out"
grep -q '"traceEvents"' "$TMP/chrome.out" || {
  echo "smoke: FAIL Chrome trace export missing traceEvents" >&2
  cat "$TMP/chrome.out" >&2
  exit 1
}

echo "smoke: checking streaming SUBSCRIBE"
# The standing query's first EVENT frame (the initial snapshot) is
# pushed at SUBSCRIBE time; a second frame arrives if the feed is
# still airing. At least one pushed notification must land.
printf "subscribe SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')\nfollow 2\n.quit\n" \
  | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/stream.out" || true
grep -q 'subscribed as s' "$TMP/stream.out" || {
  echo "smoke: FAIL SUBSCRIBE did not register" >&2
  cat "$TMP/stream.out" >&2
  exit 1
}
grep -qE 'EVENT s[0-9]+ seq=[0-9]+ watermark=' "$TMP/stream.out" || {
  echo "smoke: FAIL no pushed EVENT frame arrived" >&2
  cat "$TMP/stream.out" >&2
  exit 1
}
printf 'TRACEDUMP\n.quit\n' | "$BIN/cobra-cli" -connect "$ADDR" >"$TMP/straces.out"
grep -q 'SUBSCRIBE\[s' "$TMP/straces.out" || {
  echo "smoke: FAIL no stream.eval trace for the standing query in TRACEDUMP" >&2
  cat "$TMP/straces.out" >&2
  exit 1
}

echo "smoke: checking /metrics content negotiation"
curl -fsS "http://$MADDR/metrics" >"$TMP/metrics.prom"
grep -q '^# TYPE cobra_' "$TMP/metrics.prom" || {
  echo "smoke: FAIL /metrics default is not Prometheus text" >&2
  head -5 "$TMP/metrics.prom" >&2
  exit 1
}
grep -q 'cobra_coql_queries' "$TMP/metrics.prom" || {
  echo "smoke: FAIL query counter missing from Prometheus exposition" >&2
  exit 1
}
grep -q 'cobra_stream_evals' "$TMP/metrics.prom" || {
  echo "smoke: FAIL streaming counters missing from Prometheus exposition" >&2
  exit 1
}
for m in cobra_qcache_hits cobra_qcache_misses cobra_qcache_invalidations; do
  grep -q "$m" "$TMP/metrics.prom" || {
    echo "smoke: FAIL result-cache counter $m missing from Prometheus exposition" >&2
    exit 1
  }
done
curl -fsS -H 'Accept: application/json' "http://$MADDR/metrics" >"$TMP/metrics.json"
grep -q '"counters"' "$TMP/metrics.json" || {
  echo "smoke: FAIL /metrics JSON negotiation failed" >&2
  head -5 "$TMP/metrics.json" >&2
  exit 1
}
curl -fsS "http://$MADDR/debug/vars" >"$TMP/vars.json"
grep -q '"counters"' "$TMP/vars.json" || {
  echo "smoke: FAIL /debug/vars is not JSON" >&2
  exit 1
}

echo "smoke: OK"
